#include "kernels/attention.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "kernels/cpu/attention_kernel.h"
#include "kernels/cpu/isa.h"

namespace qserve {

void AttentionConfig::validate(bool int4_kv) const {
  QS_CHECK_MSG(n_heads > 0, "AttentionConfig: n_heads must be positive, got "
                                << n_heads);
  QS_CHECK_MSG(n_kv_heads > 0,
               "AttentionConfig: n_kv_heads must be positive, got "
                   << n_kv_heads);
  QS_CHECK_MSG(head_dim > 0, "AttentionConfig: head_dim must be positive, got "
                                 << head_dim);
  QS_CHECK_MSG(n_heads % n_kv_heads == 0,
               "AttentionConfig: n_heads (" << n_heads
                                            << ") must be a multiple of "
                                               "n_kv_heads ("
                                            << n_kv_heads << ")");
  QS_CHECK_MSG(!int4_kv || head_dim % 2 == 0,
               "AttentionConfig: INT4 KV packs two codes per byte, so "
               "head_dim must be even, got "
                   << head_dim);
}

namespace {

// Float K/V rows viewed as a single kF32 "run" for the shared attention
// microkernels — the gather/prefill path goes through the exact same QK/SV
// code as the fused paged path, which is what keeps the two bitwise equal
// (tests/test_fused_attention.cpp pins this).
cpu::KvHeadRun f32_run(const Tensor& m, int64_t row0, int64_t kv_head,
                       int head_dim, int64_t n_tokens) {
  cpu::KvHeadRun run;
  run.kind = cpu::KvRunKind::kF32;
  run.n_tokens = n_tokens;
  run.f32 = m.row(row0) + kv_head * head_dim;
  run.stride = m.cols();
  return run;
}

// One head, one query vector, attending two gathered-row ranges: [0, a) and
// [row2, row2 + cnt2). Scores buffer must hold a + cnt2 floats. When the
// ranges are adjacent (row2 == a) the split QK calls write per-token-
// independent dots into adjacent score slots and the chained SV calls
// accumulate token-sequentially across the boundary, so the result is
// bitwise identical to one call over rows [0, a + cnt2) — the full-attention
// case is the a = s_visible, cnt2 = 0 degenerate of this function.
void head_attention_ranges(const cpu::AttentionKernels& ker, const float* qh,
                           const Tensor& k, const Tensor& v, int64_t kv_head,
                           int head_dim, int64_t a, int64_t row2, int64_t cnt2,
                           bool fp16_accum, float* scores, float* out) {
  const float scale = 1.0f / std::sqrt(float(head_dim));
  const int64_t n_vis = a + cnt2;
  if (a > 0)
    ker.qk_dot(qh, f32_run(k, 0, kv_head, head_dim, a), head_dim, scores);
  if (cnt2 > 0)
    ker.qk_dot(qh, f32_run(k, row2, kv_head, head_dim, cnt2), head_dim,
               scores + a);
  for (int64_t t = 0; t < n_vis; ++t) {
    // QServe converts the QK product to FP16 (§5.3); the baseline keeps FP32.
    const float dot = scores[t] * scale;
    scores[t] = fp16_accum ? to_half_precision(dot) : dot;
  }
  softmax_inplace(scores, static_cast<int>(n_vis));
  for (int d = 0; d < head_dim; ++d) out[d] = 0.0f;
  if (a > 0)
    ker.sv_accum(scores, f32_run(v, 0, kv_head, head_dim, a), head_dim, out);
  if (cnt2 > 0)
    ker.sv_accum(scores + a, f32_run(v, row2, kv_head, head_dim, cnt2),
                 head_dim, out);
  if (fp16_accum) {
    for (int d = 0; d < head_dim; ++d) out[d] = to_half_precision(out[d]);
  }
}

// One head, one query vector, keys rows [0, s_visible). Scores buffer must
// hold s_visible floats.
void head_attention(const cpu::AttentionKernels& ker, const float* qh,
                    const Tensor& k, const Tensor& v, int64_t kv_head,
                    int head_dim, int64_t s_visible, bool fp16_accum,
                    float* scores, float* out) {
  head_attention_ranges(ker, qh, k, v, kv_head, head_dim, s_visible, 0, 0,
                        fp16_accum, scores, out);
}

}  // namespace

Tensor attention_prefill(const Tensor& q, const Tensor& k, const Tensor& v,
                         const AttentionConfig& cfg) {
  cfg.validate();
  QS_CHECK_EQ(q.cols(), int64_t(cfg.n_heads) * cfg.head_dim);
  QS_CHECK_EQ(k.cols(), int64_t(cfg.n_kv_heads) * cfg.head_dim);
  QS_CHECK(k.same_shape(v));
  const int64_t n = q.rows(), s = k.rows();
  QS_CHECK_LE(n, s);
  const int group = cfg.n_heads / cfg.n_kv_heads;
  const cpu::AttentionKernels& ker = cpu::attention_kernel_for(cpu::active_isa());

  Tensor out({n, q.cols()});
  // Parallel over query positions; every (position, head) pair is
  // independent, so the result is bitwise identical to the serial loop.
  parallel_for(0, n, 1, [&](int64_t i0, int64_t i1) {
    // Reused per pool thread to keep per-row heap traffic off the hot path.
    thread_local std::vector<float> scores;
    scores.resize(static_cast<size_t>(s));
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t visible = s - n + i + 1;  // causal mask
      for (int h = 0; h < cfg.n_heads; ++h) {
        const float* qh = q.row(i) + int64_t(h) * cfg.head_dim;
        float* oh = out.row(i) + int64_t(h) * cfg.head_dim;
        head_attention(ker, qh, k, v, h / group, cfg.head_dim, visible,
                       cfg.fp16_accum, scores.data(), oh);
      }
    }
  });
  return out;
}

Tensor attention_prefill_windowed(const Tensor& q, const Tensor& k,
                                  const Tensor& v, const AttentionConfig& cfg,
                                  int64_t s_total, int64_t sink,
                                  int64_t window, int64_t tail0) {
  cfg.validate();
  QS_CHECK_EQ(q.cols(), int64_t(cfg.n_heads) * cfg.head_dim);
  QS_CHECK_EQ(k.cols(), int64_t(cfg.n_kv_heads) * cfg.head_dim);
  QS_CHECK(k.same_shape(v));
  QS_CHECK_GT(window, 0);
  QS_CHECK_GE(sink, 0);
  const int64_t n = q.rows();
  QS_CHECK_LE(n, s_total);
  const int64_t sink_eff = std::min(sink, s_total);
  QS_CHECK(tail0 >= sink_eff && tail0 <= s_total);
  QS_CHECK_EQ(k.rows(), sink_eff + (s_total - tail0));
  // Residency: the earliest query row's window lower bound must still be in
  // the gathered tail (the cache's slack discipline guarantees this; a
  // violation means the caller recycled pages a pending query still needs).
  QS_CHECK_MSG(s_total - n + 1 <= sink ||
                   std::max(sink, s_total - n + 1 - window) >= tail0,
               "attention_prefill_windowed: earliest query row (position "
                   << s_total - n << ") needs tokens below the resident tail "
                   << tail0);
  const int group = cfg.n_heads / cfg.n_kv_heads;
  const cpu::AttentionKernels& ker = cpu::attention_kernel_for(cpu::active_isa());

  Tensor out({n, q.cols()});
  // Parallel over query positions; every (position, head) pair is
  // independent, so the result is bitwise identical to the serial loop.
  parallel_for(0, n, 1, [&](int64_t i0, int64_t i1) {
    // Reused per pool thread to keep per-row heap traffic off the hot path.
    thread_local std::vector<float> scores;
    scores.resize(static_cast<size_t>(std::min(s_total, sink + window)));
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t p = s_total - n + i;            // logical position
      const int64_t a = std::min(p + 1, sink_eff);  // sink rows [0, a)
      const int64_t lo2 = std::max(sink, p + 1 - window);
      const int64_t cnt2 = std::max<int64_t>(0, p + 1 - lo2);
      const int64_t row2 = cnt2 > 0 ? sink_eff + (lo2 - tail0) : 0;
      for (int h = 0; h < cfg.n_heads; ++h) {
        const float* qh = q.row(i) + int64_t(h) * cfg.head_dim;
        float* oh = out.row(i) + int64_t(h) * cfg.head_dim;
        head_attention_ranges(ker, qh, k, v, h / group, cfg.head_dim, a, row2,
                              cnt2, cfg.fp16_accum, scores.data(), oh);
      }
    }
  });
  return out;
}

void attention_decode_token(const float* q, const Tensor& k, const Tensor& v,
                            const AttentionConfig& cfg, float* out) {
  cfg.validate();
  QS_CHECK_EQ(k.cols(), int64_t(cfg.n_kv_heads) * cfg.head_dim);
  QS_CHECK(k.same_shape(v));
  const int64_t s = k.rows();
  const int group = cfg.n_heads / cfg.n_kv_heads;
  const cpu::AttentionKernels& ker = cpu::attention_kernel_for(cpu::active_isa());
  parallel_for(0, cfg.n_heads, 1, [&](int64_t h0, int64_t h1) {
    // Reused per pool thread to keep per-head heap traffic off the hot path.
    thread_local std::vector<float> scores;
    scores.resize(static_cast<size_t>(s));
    for (int64_t h = h0; h < h1; ++h) {
      head_attention(ker, q + h * cfg.head_dim, k, v,
                     static_cast<int>(h) / group, cfg.head_dim, s,
                     cfg.fp16_accum, scores.data(), out + h * cfg.head_dim);
    }
  });
}

}  // namespace qserve
