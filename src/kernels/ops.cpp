#include "kernels/ops.h"

#include <cmath>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "quant/quantize.h"

namespace qserve {

Tensor rms_norm(const Tensor& x, const Tensor& gamma, float eps) {
  QS_CHECK_EQ(x.ndim(), 2);
  QS_CHECK_EQ(x.cols(), gamma.numel());
  const int64_t m = x.rows(), d = x.cols();
  Tensor y({m, d});
  // Row-independent, so the batched executor's stacked rows parallelize
  // bitwise-identically; a decode-sized m stays inline via the grain.
  parallel_for(0, m, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const float* xr = x.row(t);
      double ss = 0.0;
      for (int64_t c = 0; c < d; ++c) ss += double(xr[c]) * double(xr[c]);
      const float inv = 1.0f / std::sqrt(float(ss / double(d)) + eps);
      float* yr = y.row(t);
      for (int64_t c = 0; c < d; ++c) yr[c] = xr[c] * inv * gamma[c];
    }
  });
  return y;
}

QuantizedActs rms_norm_quant(const Tensor& x, const Tensor& gamma, float eps) {
  return quantize_acts_per_token(rms_norm(x, gamma, eps));
}

Tensor silu(const Tensor& x) {
  Tensor y = x;
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y[i];
    y[i] = v / (1.0f + std::exp(-v));
  }
  return y;
}

Tensor swiglu(const Tensor& gate_up) {
  QS_CHECK_EQ(gate_up.ndim(), 2);
  QS_CHECK_EQ(gate_up.cols() % 2, 0);
  const int64_t m = gate_up.rows(), d = gate_up.cols() / 2;
  Tensor y({m, d});
  for (int64_t t = 0; t < m; ++t) {
    const float* g = gate_up.row(t);
    const float* u = g + d;
    float* yr = y.row(t);
    for (int64_t c = 0; c < d; ++c) {
      const float v = g[c];
      yr[c] = (v / (1.0f + std::exp(-v))) * u[c];
    }
  }
  return y;
}

QuantizedActs swiglu_quant(const Tensor& gate_up) {
  return quantize_acts_per_token(swiglu(gate_up));
}

void rope_inplace(Tensor& x, const std::vector<int>& positions, int head_dim,
                  float theta) {
  QS_CHECK_EQ(x.ndim(), 2);
  QS_CHECK_EQ(x.cols() % head_dim, 0);
  QS_CHECK_EQ(x.rows(), static_cast<int64_t>(positions.size()));
  QS_CHECK_EQ(head_dim % 2, 0);
  const int64_t m = x.rows();
  const int64_t heads = x.cols() / head_dim;
  const int half = head_dim / 2;
  for (int64_t t = 0; t < m; ++t) {
    const float pos = static_cast<float>(positions[static_cast<size_t>(t)]);
    float* xr = x.row(t);
    for (int64_t h = 0; h < heads; ++h) {
      float* hp = xr + h * head_dim;
      for (int i = 0; i < half; ++i) {
        const float freq =
            std::pow(theta, -2.0f * float(i) / float(head_dim));
        const float c = std::cos(pos * freq), s = std::sin(pos * freq);
        const float a = hp[i], b = hp[i + half];
        hp[i] = a * c - b * s;
        hp[i + half] = a * s + b * c;
      }
    }
  }
}

void add_inplace(Tensor& y, const Tensor& x) {
  QS_CHECK(y.same_shape(x));
  for (int64_t i = 0; i < y.numel(); ++i) y[i] += x[i];
}

}  // namespace qserve
