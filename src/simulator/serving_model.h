// End-to-end LLM serving throughput estimator (Table 4, Fig. 15/17).
//
// For a model, device, system and batch size, walks the serving timeline:
// batched prefill (compute-bound GEMMs + causal attention), then `output_len`
// decode steps whose per-step cost is the sum of all layer GEMMs (gemm_model),
// decode attention (attention_model), the LM head and a small elementwise
// term. Memory admission mirrors the papers' setting: weights + KV pool must
// fit the device; batch is feasible only if every sequence can reach
// input_len + output_len tokens.
#pragma once

#include <algorithm>
#include <cstdint>

#include "model/config.h"
#include "simulator/system_config.h"

namespace qserve::sim {

struct ServingWorkload {
  int input_len = 1024;
  int output_len = 512;
  // Sliding-window attention with sinks (0 = full attention), mirroring
  // RequestOptions: each decode step reads at most sink_tokens + window KV
  // positions, and the KV pool holds at most that many tokens per sequence
  // (the engine's page ring recycles the rest in place). Bounds both the
  // decode attention term and kv_pool_bytes, which is what makes the
  // estimated decode curve flatten past sinks + window instead of growing
  // linearly with context.
  int attention_window = 0;
  int sink_tokens = 0;
  // KV positions a step at sequence length `s_len` actually reads/retains.
  int64_t visible_len(int64_t s_len) const {
    if (attention_window <= 0) return s_len;
    return std::min<int64_t>(s_len, sink_tokens + attention_window);
  }
};

struct StepBreakdown {
  double gemm_seconds = 0;
  double attention_seconds = 0;
  double other_seconds = 0;  // norms / rope / quant / lm-head
  double total() const {
    return gemm_seconds + attention_seconds + other_seconds;
  }
};

struct ServingEstimate {
  bool supported = true;
  bool oom = false;
  int batch = 0;
  double tokens_per_second = 0;
  double prefill_seconds = 0;
  double decode_seconds = 0;
  StepBreakdown mid_decode_step;  // breakdown at S = input + output/2
};

// Fixed-batch estimate. Returns oom=true if weights + KV don't fit.
ServingEstimate estimate_throughput(const DeviceSpec& dev,
                                    const SystemProfile& sys,
                                    const qserve::ModelConfig& model,
                                    const ServingWorkload& wl, int batch);

// Max achievable throughput: scan batch sizes (powers of two + midpoints)
// under the device memory budget and return the best estimate.
ServingEstimate max_throughput(const DeviceSpec& dev, const SystemProfile& sys,
                               const qserve::ModelConfig& model,
                               const ServingWorkload& wl, int max_batch = 512);

// Largest batch that fits in memory (0 if even batch 1 doesn't fit).
int max_feasible_batch(const DeviceSpec& dev, const SystemProfile& sys,
                       const qserve::ModelConfig& model,
                       const ServingWorkload& wl, int cap = 512);

// Device bytes needed for the KV pool at `batch` concurrent sequences of
// final length input+output (per-head dynamic scales included when used).
double kv_pool_bytes(const SystemProfile& sys, const qserve::ModelConfig& model,
                     const ServingWorkload& wl, int batch);

// --- tensor-parallel decode scaling ------------------------------------------
//
// First-principles model of one decode step under the engine's tensor-parallel
// executor: shardable work (column/row-sliced layer GEMMs via gemm_model plus
// each shard's KV-head slice of decode attention) runs on n_shards disjoint
// pools of max(1, n_threads / n_shards) threads, while central work (norms,
// activation quant, LM head) and the reduction boundaries (pairwise all-reduce
// of row-parallel INT32 partials, concat of column-parallel outputs) stay on
// the full budget. The boundary cost is the roofline max of streaming the
// partial/concat buffers and the reduction adds — its computation intensity is
// ~1 op/element, far below the CUDA-core turning point, so it is memory-bound
// on every modelled device. Throughput is reported relative to the
// single-shard step at the SAME thread budget, so absolute device constants
// cancel; with n_threads >= n_shards the pools partition a fixed budget and
// the honest prediction is <= 1 (TP buys locality and smaller sync domains,
// not extra FLOPs), degrading gracefully via the comm term as shards grow.
struct TpScalingEstimate {
  int n_shards = 1;
  double step_seconds = 0;  // absolute (uncalibrated) model step time
  double comm_seconds = 0;  // reduction + concat boundary time per step
  double relative_throughput = 1.0;  // step(1 shard) / step(n_shards)
};

TpScalingEstimate estimate_tp_decode_scaling(const DeviceSpec& dev,
                                             const SystemProfile& sys,
                                             const qserve::ModelConfig& model,
                                             int batch, int seq_len,
                                             int n_shards, int n_threads);

}  // namespace qserve::sim
