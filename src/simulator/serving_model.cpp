#include "simulator/serving_model.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace qserve::sim {

namespace {

// Per-layer GEMM shapes of a Llama-style block.
struct BlockGemms {
  std::vector<GemmShape> shapes;
};

BlockGemms block_gemms(const qserve::ModelConfig& m, int64_t tokens) {
  BlockGemms b;
  auto add = [&](int64_t n, int64_t k) {
    GemmShape s;
    s.m = tokens;
    s.n = n;
    s.k = k;
    b.shapes.push_back(s);
  };
  add(m.q_dim() + 2 * m.kv_dim(), m.hidden);  // fused qkv
  add(m.hidden, m.q_dim());                   // o_proj
  add(2 * m.ffn_dim, m.hidden);               // gate|up
  add(m.hidden, m.ffn_dim);                   // down
  return b;
}

double layer_gemm_seconds(const DeviceSpec& dev, const SystemProfile& sys,
                          const qserve::ModelConfig& m, int64_t tokens) {
  double total = 0;
  for (const auto& shape : block_gemms(m, tokens).shapes) {
    total += gemm_cost(dev, sys.gemm, shape).seconds;
    if (sys.online_transform_ops_per_elem > 0) {
      // Online activation transform (e.g. QuaRot Hadamard) per GEMM input.
      total += double(tokens) * double(shape.k) *
               sys.online_transform_ops_per_elem / dev.cuda_ops_per_s(false);
    }
  }
  return total;
}

double lm_head_seconds(const DeviceSpec& dev, const qserve::ModelConfig& m,
                       int64_t tokens) {
  GemmShape s;
  s.m = tokens;
  s.n = m.vocab;
  s.k = m.hidden;
  return gemm_cost(dev, GemmPipeline::kFp16, s).seconds;
}

// Elementwise work (norms, RoPE, residuals, activation quant): memory-bound
// streaming of ~12 hidden-sized vectors per token per layer.
double elementwise_seconds(const DeviceSpec& dev, const qserve::ModelConfig& m,
                           int64_t tokens) {
  const double bytes = 12.0 * double(tokens) * double(m.hidden) * 2.0;
  return bytes / dev.hbm_bytes_per_s();
}

AttentionShape attn_shape(const qserve::ModelConfig& m, int batch,
                          int seq_len) {
  AttentionShape s;
  s.batch = batch;
  s.seq_len = seq_len;
  s.n_heads = m.n_heads;
  s.n_kv_heads = m.n_kv_heads;
  s.head_dim = m.head_dim;
  return s;
}

}  // namespace

double kv_pool_bytes(const SystemProfile& sys, const qserve::ModelConfig& model,
                     const ServingWorkload& wl, int batch) {
  // A windowed sequence's footprint is capped at sinks + window — the page
  // ring recycles everything older in place.
  const double tokens =
      double(batch) * double(wl.visible_len(wl.input_len + wl.output_len));
  double per_token = double(model.kv_bytes_per_token(sys.kv_bits));
  if (sys.attention.dynamic_scales) {
    per_token += 2.0 * model.n_layers * model.n_kv_heads * 4.0;
  }
  double pool = tokens * per_token;
  if (!sys.paged_kv) pool *= 1.35;  // fragmentation without paging
  return pool;
}

int max_feasible_batch(const DeviceSpec& dev, const SystemProfile& sys,
                       const qserve::ModelConfig& model,
                       const ServingWorkload& wl, int cap) {
  const double weights = double(model.weight_bytes(sys.weight_bits));
  const double workspace = 2.0 * double(1ull << 30);  // runtime + activations
  const double budget = dev.memory_bytes() - weights - workspace;
  if (budget <= 0) return 0;
  int best = 0;
  for (int b = 1; b <= cap; ++b) {
    if (kv_pool_bytes(sys, model, wl, b) <= budget) best = b;
    else break;
  }
  return best;
}

ServingEstimate estimate_throughput(const DeviceSpec& dev,
                                    const SystemProfile& sys,
                                    const qserve::ModelConfig& model,
                                    const ServingWorkload& wl, int batch) {
  ServingEstimate est;
  est.batch = batch;
  est.supported = sys.supports(model);
  if (!est.supported) return est;
  if (max_feasible_batch(dev, sys, model, wl, batch) < batch) {
    est.oom = true;
    return est;
  }

  // --- prefill: all prompts batched through the block stack -------------------
  const int64_t prefill_tokens = int64_t(batch) * wl.input_len;
  double prefill = double(model.n_layers) *
                       (layer_gemm_seconds(dev, sys, model, prefill_tokens) +
                        elementwise_seconds(dev, model, prefill_tokens)) +
                   double(model.n_layers) *
                       attention_prefill_seconds(
                           dev, attn_shape(model, batch, wl.input_len),
                           wl.input_len) +
                   lm_head_seconds(dev, model, batch);
  est.prefill_seconds = prefill;

  // --- decode: output_len steps, KV length grows ------------------------------
  double decode = 0;
  AttentionKernelConfig attn_cfg = sys.attention;
  attn_cfg.kv_bits = sys.kv_bits;
  for (int step = 0; step < wl.output_len; ++step) {
    // A windowed decode reads only the sink + trailing-window KV rows, so its
    // attention term stops growing once the context passes sinks + window.
    const int s_len = int(wl.visible_len(wl.input_len + step));
    const double gemms =
        double(model.n_layers) * layer_gemm_seconds(dev, sys, model, batch);
    const double attn =
        double(model.n_layers) *
        attention_decode_cost(dev, attn_cfg, attn_shape(model, batch, s_len))
            .seconds;
    const double other = double(model.n_layers) *
                             elementwise_seconds(dev, model, batch) +
                         lm_head_seconds(dev, model, batch);
    decode += gemms + attn + other;
    if (step == wl.output_len / 2) {
      est.mid_decode_step.gemm_seconds = gemms;
      est.mid_decode_step.attention_seconds = attn;
      est.mid_decode_step.other_seconds = other;
    }
  }
  est.decode_seconds = decode;

  const double total = prefill + decode;
  const double tokens = double(batch) * wl.output_len;
  est.tokens_per_second = tokens / total * sys.runtime_efficiency;
  return est;
}

TpScalingEstimate estimate_tp_decode_scaling(const DeviceSpec& dev,
                                             const SystemProfile& sys,
                                             const qserve::ModelConfig& model,
                                             int batch, int seq_len,
                                             int n_shards, int n_threads) {
  const int S = std::max(1, n_shards);
  const int T = std::max(1, n_threads);
  // Fraction of the device each shard's pool owns. Pools partition the thread
  // budget when it covers the shards (the engine's normal configuration);
  // oversubscribed hosts (T < S) time-slice the device evenly instead.
  const double shard_frac =
      T >= S ? double(std::max(1, T / S)) / double(T) : 1.0 / double(S);

  AttentionKernelConfig attn_cfg = sys.attention;
  attn_cfg.kv_bits = sys.kv_bits;
  const int group = model.n_heads / model.n_kv_heads;
  const int64_t dim = model.head_dim;

  // Worst shard: slices are near-even, so evaluate each shard and take max.
  double shard_seconds = 0;
  for (int s = 0; s < S; ++s) {
    const int kh0 = (s * model.n_kv_heads) / S;
    const int kh1 = ((s + 1) * model.n_kv_heads) / S;
    const int64_t f0 = (int64_t(s) * model.ffn_dim) / S;
    const int64_t f1 = (int64_t(s + 1) * model.ffn_dim) / S;
    const int64_t ko0 = (int64_t(s) * model.q_dim()) / S;
    const int64_t ko1 = (int64_t(s + 1) * model.q_dim()) / S;
    auto slice_cost = [&](int64_t n, int64_t k) {
      GemmShape shape;
      shape.m = batch;
      shape.n = n;
      shape.k = k;
      return gemm_cost(dev, sys.gemm, shape).seconds;
    };
    double t = 0;
    // Column-parallel QKV + gate|up (output rows sliced), row-parallel
    // o_proj + down (input columns sliced) — the engine's shard plan.
    t += slice_cost(int64_t(kh1 - kh0) * dim * int64_t(group) +
                        2 * int64_t(kh1 - kh0) * dim,
                    model.hidden);
    t += slice_cost(model.hidden, ko1 - ko0);
    t += slice_cost(2 * (f1 - f0), model.hidden);
    t += slice_cost(model.hidden, f1 - f0);
    if (kh1 > kh0) {
      AttentionShape as;
      as.batch = batch;
      as.seq_len = seq_len;
      as.n_kv_heads = kh1 - kh0;
      as.n_heads = (kh1 - kh0) * group;
      as.head_dim = model.head_dim;
      t += attention_decode_cost(dev, attn_cfg, as).seconds;
    }
    shard_seconds = std::max(shard_seconds, t / shard_frac);
  }

  // Reduction + concat boundary, absent at one shard: concat streams the
  // column-parallel attention and gate|up outputs once; each all-reduce
  // streams S INT32 partial rows down the pairwise tree and writes one. The
  // adds sit at ~1 op/element, well under the roofline turning point, so the
  // max() below resolves to the memory side on every modelled device.
  double comm = 0;
  if (S > 1) {
    const double concat_bytes =
        2.0 * 4.0 * double(batch) * double(model.q_dim() + 2 * model.ffn_dim);
    const double reduce_bytes =
        2.0 * 4.0 * double(batch) * double(model.hidden) * double(S + 1);
    const double reduce_ops =
        2.0 * double(batch) * double(model.hidden) * double(S - 1);
    comm = std::max((concat_bytes + reduce_bytes) / dev.hbm_bytes_per_s(),
                    reduce_ops / dev.cuda_ops_per_s(false));
  }

  TpScalingEstimate est;
  est.n_shards = S;
  est.comm_seconds = double(model.n_layers) * comm;
  est.step_seconds =
      double(model.n_layers) *
          (shard_seconds + comm + elementwise_seconds(dev, model, batch)) +
      lm_head_seconds(dev, model, batch);
  if (S == 1) {
    est.relative_throughput = 1.0;
  } else {
    const TpScalingEstimate base = estimate_tp_decode_scaling(
        dev, sys, model, batch, seq_len, 1, n_threads);
    est.relative_throughput = base.step_seconds / est.step_seconds;
  }
  return est;
}

ServingEstimate max_throughput(const DeviceSpec& dev, const SystemProfile& sys,
                               const qserve::ModelConfig& model,
                               const ServingWorkload& wl, int max_batch) {
  ServingEstimate best;
  best.supported = sys.supports(model);
  if (!best.supported) return best;
  const int feasible = max_feasible_batch(dev, sys, model, wl, max_batch);
  if (feasible == 0) {
    best.oom = true;
    return best;
  }
  std::set<int> candidates;
  for (int b = 1; b <= feasible; b *= 2) {
    candidates.insert(b);
    candidates.insert(std::min(feasible, b + b / 2));
  }
  candidates.insert(feasible);
  for (int b : candidates) {
    const ServingEstimate est = estimate_throughput(dev, sys, model, wl, b);
    if (!est.oom && est.tokens_per_second > best.tokens_per_second) best = est;
  }
  return best;
}

}  // namespace qserve::sim
