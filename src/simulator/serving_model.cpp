#include "simulator/serving_model.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace qserve::sim {

namespace {

// Per-layer GEMM shapes of a Llama-style block.
struct BlockGemms {
  std::vector<GemmShape> shapes;
};

BlockGemms block_gemms(const qserve::ModelConfig& m, int64_t tokens) {
  BlockGemms b;
  auto add = [&](int64_t n, int64_t k) {
    GemmShape s;
    s.m = tokens;
    s.n = n;
    s.k = k;
    b.shapes.push_back(s);
  };
  add(m.q_dim() + 2 * m.kv_dim(), m.hidden);  // fused qkv
  add(m.hidden, m.q_dim());                   // o_proj
  add(2 * m.ffn_dim, m.hidden);               // gate|up
  add(m.hidden, m.ffn_dim);                   // down
  return b;
}

double layer_gemm_seconds(const DeviceSpec& dev, const SystemProfile& sys,
                          const qserve::ModelConfig& m, int64_t tokens) {
  double total = 0;
  for (const auto& shape : block_gemms(m, tokens).shapes) {
    total += gemm_cost(dev, sys.gemm, shape).seconds;
    if (sys.online_transform_ops_per_elem > 0) {
      // Online activation transform (e.g. QuaRot Hadamard) per GEMM input.
      total += double(tokens) * double(shape.k) *
               sys.online_transform_ops_per_elem / dev.cuda_ops_per_s(false);
    }
  }
  return total;
}

double lm_head_seconds(const DeviceSpec& dev, const qserve::ModelConfig& m,
                       int64_t tokens) {
  GemmShape s;
  s.m = tokens;
  s.n = m.vocab;
  s.k = m.hidden;
  return gemm_cost(dev, GemmPipeline::kFp16, s).seconds;
}

// Elementwise work (norms, RoPE, residuals, activation quant): memory-bound
// streaming of ~12 hidden-sized vectors per token per layer.
double elementwise_seconds(const DeviceSpec& dev, const qserve::ModelConfig& m,
                           int64_t tokens) {
  const double bytes = 12.0 * double(tokens) * double(m.hidden) * 2.0;
  return bytes / dev.hbm_bytes_per_s();
}

AttentionShape attn_shape(const qserve::ModelConfig& m, int batch,
                          int seq_len) {
  AttentionShape s;
  s.batch = batch;
  s.seq_len = seq_len;
  s.n_heads = m.n_heads;
  s.n_kv_heads = m.n_kv_heads;
  s.head_dim = m.head_dim;
  return s;
}

}  // namespace

double kv_pool_bytes(const SystemProfile& sys, const qserve::ModelConfig& model,
                     const ServingWorkload& wl, int batch) {
  const double tokens = double(batch) * (wl.input_len + wl.output_len);
  double per_token = double(model.kv_bytes_per_token(sys.kv_bits));
  if (sys.attention.dynamic_scales) {
    per_token += 2.0 * model.n_layers * model.n_kv_heads * 4.0;
  }
  double pool = tokens * per_token;
  if (!sys.paged_kv) pool *= 1.35;  // fragmentation without paging
  return pool;
}

int max_feasible_batch(const DeviceSpec& dev, const SystemProfile& sys,
                       const qserve::ModelConfig& model,
                       const ServingWorkload& wl, int cap) {
  const double weights = double(model.weight_bytes(sys.weight_bits));
  const double workspace = 2.0 * double(1ull << 30);  // runtime + activations
  const double budget = dev.memory_bytes() - weights - workspace;
  if (budget <= 0) return 0;
  int best = 0;
  for (int b = 1; b <= cap; ++b) {
    if (kv_pool_bytes(sys, model, wl, b) <= budget) best = b;
    else break;
  }
  return best;
}

ServingEstimate estimate_throughput(const DeviceSpec& dev,
                                    const SystemProfile& sys,
                                    const qserve::ModelConfig& model,
                                    const ServingWorkload& wl, int batch) {
  ServingEstimate est;
  est.batch = batch;
  est.supported = sys.supports(model);
  if (!est.supported) return est;
  if (max_feasible_batch(dev, sys, model, wl, batch) < batch) {
    est.oom = true;
    return est;
  }

  // --- prefill: all prompts batched through the block stack -------------------
  const int64_t prefill_tokens = int64_t(batch) * wl.input_len;
  double prefill = double(model.n_layers) *
                       (layer_gemm_seconds(dev, sys, model, prefill_tokens) +
                        elementwise_seconds(dev, model, prefill_tokens)) +
                   double(model.n_layers) *
                       attention_prefill_seconds(
                           dev, attn_shape(model, batch, wl.input_len),
                           wl.input_len) +
                   lm_head_seconds(dev, model, batch);
  est.prefill_seconds = prefill;

  // --- decode: output_len steps, KV length grows ------------------------------
  double decode = 0;
  AttentionKernelConfig attn_cfg = sys.attention;
  attn_cfg.kv_bits = sys.kv_bits;
  for (int step = 0; step < wl.output_len; ++step) {
    const int s_len = wl.input_len + step;
    const double gemms =
        double(model.n_layers) * layer_gemm_seconds(dev, sys, model, batch);
    const double attn =
        double(model.n_layers) *
        attention_decode_cost(dev, attn_cfg, attn_shape(model, batch, s_len))
            .seconds;
    const double other = double(model.n_layers) *
                             elementwise_seconds(dev, model, batch) +
                         lm_head_seconds(dev, model, batch);
    decode += gemms + attn + other;
    if (step == wl.output_len / 2) {
      est.mid_decode_step.gemm_seconds = gemms;
      est.mid_decode_step.attention_seconds = attn;
      est.mid_decode_step.other_seconds = other;
    }
  }
  est.decode_seconds = decode;

  const double total = prefill + decode;
  const double tokens = double(batch) * wl.output_len;
  est.tokens_per_second = tokens / total * sys.runtime_efficiency;
  return est;
}

ServingEstimate max_throughput(const DeviceSpec& dev, const SystemProfile& sys,
                               const qserve::ModelConfig& model,
                               const ServingWorkload& wl, int max_batch) {
  ServingEstimate best;
  best.supported = sys.supports(model);
  if (!best.supported) return best;
  const int feasible = max_feasible_batch(dev, sys, model, wl, max_batch);
  if (feasible == 0) {
    best.oom = true;
    return best;
  }
  std::set<int> candidates;
  for (int b = 1; b <= feasible; b *= 2) {
    candidates.insert(b);
    candidates.insert(std::min(feasible, b + b / 2));
  }
  candidates.insert(feasible);
  for (int b : candidates) {
    const ServingEstimate est = estimate_throughput(dev, sys, model, wl, b);
    if (!est.oom && est.tokens_per_second > best.tokens_per_second) best = est;
  }
  return best;
}

}  // namespace qserve::sim
