// Analytical decode-attention cost model (§3.1, §5.3, Table 1).
//
// Decode attention is a batched GEMV: computation intensity ~1 MAC/element,
// memory traffic dominated by KV cache reads. Quantizing KV shrinks traffic
// (higher effective bandwidth) but adds CUDA-core dequant arithmetic, which
// on A100 can push the *fused* kernel past the CUDA-core roofline turning
// point (9.8 ops/byte FP32). QServe's fixes — FP16 arithmetic (2x roof), bit-
// trick dequant (5 -> 2 ops/element), simplified control flow and prefetched
// scales — are individual toggles so the §6.4 breakdown is reproducible.
#pragma once

#include "simulator/device.h"

namespace qserve::sim {

struct AttentionKernelConfig {
  int kv_bits = 16;
  bool dynamic_scales = false;  // per-head in-page scales (QServe KV4)
  bool fp16_arithmetic = false; // FP32 -> FP16 QK/SV products
  bool bit_trick_dequant = false;  // 5 ops -> 2 ops per element
  bool simplified_control = false; // control-flow simplification
  bool prefetch_scales = false;    // async scale/zero prefetch
  bool hadamard_in_kernel = false; // QuaRot's in-kernel transform

  static AttentionKernelConfig trt_kv8();
  static AttentionKernelConfig naive_kv4();
  static AttentionKernelConfig qserve_kv4();
  static AttentionKernelConfig fp16_baseline();
};

struct AttentionShape {
  int batch = 64;
  int seq_len = 1024;      // cached tokens per sequence
  int n_heads = 32;
  int n_kv_heads = 32;
  int head_dim = 128;
};

struct AttentionCost {
  double seconds = 0;
  double memory_seconds = 0;
  double cuda_seconds = 0;
  bool compute_bound = false;
  double ops_per_byte = 0;  // fused-kernel arithmetic intensity
};

// Cost of one decode step's attention for one layer.
AttentionCost attention_decode_cost(const DeviceSpec& dev,
                                    const AttentionKernelConfig& cfg,
                                    const AttentionShape& shape);

// Prefill attention (compute-bound FP16 score/value GEMMs over the prompt).
double attention_prefill_seconds(const DeviceSpec& dev,
                                 const AttentionShape& shape,
                                 int prompt_len);

}  // namespace qserve::sim
