// Roofline helper (Fig. 3): attainable performance vs computation intensity
// for each weight x activation precision pairing, using peak (not derated)
// numbers as the paper's figure does.
#pragma once

#include <string>
#include <vector>

#include "simulator/device.h"

namespace qserve::sim {

struct RooflineCurve {
  std::string label;          // e.g. "INT4 x INT8 (W4A8)"
  double peak_tops = 0;       // compute roof
  double bytes_per_element = 0;  // dominant (weight/KV) traffic per element
};

// GEMM curves for FP16xFP16, INT8xINT8, INT4xFP16, INT4xINT8.
std::vector<RooflineCurve> gemm_roofline_curves(const DeviceSpec& dev);

// Decode-attention curves for FP16/INT8/INT4 KV (CUDA-core bound, I = 1).
std::vector<RooflineCurve> attention_roofline_curves(const DeviceSpec& dev);

// Attainable TOPS at computation intensity I (MACs per element).
double attainable_tops(const DeviceSpec& dev, const RooflineCurve& curve,
                       double intensity);

// Intensity where the curve turns compute-bound.
double turning_point(const DeviceSpec& dev, const RooflineCurve& curve);

}  // namespace qserve::sim
