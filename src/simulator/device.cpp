#include "simulator/device.h"

namespace qserve::sim {

DeviceSpec a100_80g() {
  DeviceSpec d;
  d.name = "A100-80G-SXM4";
  d.fp16_tc_tops = 312;
  d.int8_tc_tops = 624;
  d.int4_tc_tops = 1248;
  d.fp32_cuda_tflops = 19.5;
  d.fp16_cuda_tflops = 78.0;
  d.hbm_gbps = 2039;
  d.memory_gib = 80;
  return d;
}

DeviceSpec l40s_48g() {
  DeviceSpec d;
  d.name = "L40S-48G";
  // Dense (non-sparsity) peaks. The L40S trades memory bandwidth for strong
  // CUDA cores — the reason §6.3 picks per-group quantization on it.
  d.fp16_tc_tops = 362;
  d.int8_tc_tops = 733;
  d.int4_tc_tops = 733;  // Ada INT4 TC throughput equals INT8
  d.fp32_cuda_tflops = 91.6;
  d.fp16_cuda_tflops = 91.6;
  d.hbm_gbps = 864;
  d.memory_gib = 48;
  return d;
}

}  // namespace qserve::sim
