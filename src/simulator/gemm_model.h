// Analytical GEMM cost model (§3, §5.2, Fig. 5/18).
//
// Models an m x n x k GEMM under each serving system's pipeline:
//   time = max(memory_time, tensor_core_time + main_loop_cuda_time)
// The CUDA-core term is serialized with tensor-core work because it executes
// inside the sequential main loop (Fig. 4/5); W8A8 keeps it at zero, W4A16
// pays per-weight dequantization, Atom-W4A4 pays per-group partial-sum
// dequantization plus a register-pressure occupancy penalty (§3.2), and
// QServe-W4A8 pays the small RLP unpack cost (§5.2.2/5.2.3).
#pragma once

#include "simulator/device.h"

namespace qserve::sim {

enum class GemmPipeline {
  kFp16,              // TRT-LLM FP16
  kW8A8,              // TRT-LLM W8A8 (per-channel)
  kW4A16,             // TRT-LLM W4A16 (per-group g128)
  kW4A4Atom,          // Atom per-group W4A4
  kW4A8PerChannel,    // QServe, zero-point fused in epilogue
  kW4A8PerGroup,      // QServe progressive (g128)
  kW4A8DGQ,           // DGQ-style: separate dequant kernel + W8A8 GEMM
};

struct GemmCost {
  double seconds = 0;
  double memory_seconds = 0;
  double tensor_core_seconds = 0;
  double cuda_core_seconds = 0;   // main-loop dequant + pointer arithmetic
  bool memory_bound = false;
  // Fraction of compute time spent on main-loop CUDA-core work (Fig. 18).
  double dequant_overhead() const {
    const double compute = tensor_core_seconds + cuda_core_seconds;
    return compute > 0 ? cuda_core_seconds / compute : 0.0;
  }
};

struct GemmShape {
  int64_t m = 1, n = 4096, k = 4096;
  int group = 128;
  // Without compute-aware reordering the kernel pays pointer arithmetic per
  // 4-channel fragment (§5.2.1); QServe kernels set this false.
  bool strided_weight_access = false;
};

GemmCost gemm_cost(const DeviceSpec& dev, GemmPipeline pipe,
                   const GemmShape& shape);

// Bit widths of the pipeline's weight / activation storage.
int weight_bits(GemmPipeline pipe);
int act_bits(GemmPipeline pipe);
int tensor_core_bits(GemmPipeline pipe);

}  // namespace qserve::sim
