// Analytical GPU device models (DESIGN.md §1: substitution for real A100 /
// L40S hardware). Peak numbers follow the paper's footnote 1 and public spec
// sheets; `*_efficiency` factors account for achievable-vs-peak gaps so that
// absolute latencies land near the paper's measurements (Table 1 calibration).
#pragma once

#include <string>

namespace qserve::sim {

struct DeviceSpec {
  std::string name;

  // Tensor-core peak throughput, TOPS (MAC = 2 ops).
  double fp16_tc_tops = 312;
  double int8_tc_tops = 624;
  double int4_tc_tops = 1248;

  // CUDA-core throughput.
  double fp32_cuda_tflops = 19.5;  // also INT32 ALU rate (ops/s * 1e12)
  double fp16_cuda_tflops = 78.0;

  // Memory.
  double hbm_gbps = 2039;   // GB/s
  double memory_gib = 80;   // device memory

  // Achievable fractions of peak.
  double tc_efficiency = 0.75;
  double cuda_efficiency = 0.65;
  double hbm_efficiency = 0.65;

  double hbm_bytes_per_s() const { return hbm_gbps * 1e9 * hbm_efficiency; }
  double tensor_ops_per_s(int bits) const {
    const double tops = bits <= 4 ? int4_tc_tops
                        : bits <= 8 ? int8_tc_tops
                                    : fp16_tc_tops;
    return tops * 1e12 * tc_efficiency;
  }
  double cuda_ops_per_s(bool fp16) const {
    return (fp16 ? fp16_cuda_tflops : fp32_cuda_tflops) * 1e12 *
           cuda_efficiency;
  }
  double memory_bytes() const { return memory_gib * double(1ull << 30); }

  // Roofline turning point for CUDA-core kernels, ops/byte (§5.3 quotes
  // 9.8 ops/byte for A100 FP32: 19.5e12 / 2e12).
  double cuda_turning_point(bool fp16) const {
    return (fp16 ? fp16_cuda_tflops : fp32_cuda_tflops) * 1e12 /
           (hbm_gbps * 1e9);
  }
};

DeviceSpec a100_80g();
DeviceSpec l40s_48g();

}  // namespace qserve::sim
