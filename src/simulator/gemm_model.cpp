#include "simulator/gemm_model.h"

#include <algorithm>

namespace qserve::sim {

int weight_bits(GemmPipeline pipe) {
  switch (pipe) {
    case GemmPipeline::kFp16: return 16;
    case GemmPipeline::kW8A8: return 8;
    default: return 4;
  }
}

int act_bits(GemmPipeline pipe) {
  switch (pipe) {
    case GemmPipeline::kFp16:
    case GemmPipeline::kW4A16: return 16;
    case GemmPipeline::kW4A4Atom: return 4;
    default: return 8;
  }
}

int tensor_core_bits(GemmPipeline pipe) {
  switch (pipe) {
    case GemmPipeline::kFp16:
    case GemmPipeline::kW4A16: return 16;
    case GemmPipeline::kW4A4Atom: return 4;
    default: return 8;  // QServe & W8A8 run on INT8 tensor cores
  }
}

GemmCost gemm_cost(const DeviceSpec& dev, GemmPipeline pipe,
                   const GemmShape& shape) {
  const double m = double(shape.m), n = double(shape.n), k = double(shape.k);
  GemmCost cost;

  // --- memory traffic ---------------------------------------------------------
  const double wbits = weight_bits(pipe);
  const double abits = act_bits(pipe);
  double bytes = n * k * wbits / 8.0   // weights
                 + m * k * abits / 8.0 // activations
                 + m * n * 2.0;        // FP16 output
  // Group metadata (scales/zeros).
  if (pipe == GemmPipeline::kW4A16 || pipe == GemmPipeline::kW4A4Atom ||
      pipe == GemmPipeline::kW4A8PerGroup || pipe == GemmPipeline::kW4A8DGQ) {
    bytes += n * (k / double(shape.group)) * 4.0;  // scale+zero, ~4B/group
  }
  // Strided sub-128-bit accesses waste bandwidth (§5.2.1): 4-bit loads touch
  // 16-bit granules when the weight is not compute-aware reordered.
  if (shape.strided_weight_access && wbits == 4) {
    bytes += n * k * wbits / 8.0;  // ~2x weight traffic
  }
  cost.memory_seconds = bytes / dev.hbm_bytes_per_s();

  // --- tensor-core time ---------------------------------------------------------
  const double macs = m * n * k;
  double tc_seconds = 2.0 * macs / dev.tensor_ops_per_s(tensor_core_bits(pipe));
  // Register-pressure occupancy penalty: Atom keeps two accumulator sets
  // (INT32 + FP32) per output tile (§3.2), halving in-flight warps for
  // register-bound (large-m) problems.
  if (pipe == GemmPipeline::kW4A4Atom && shape.m >= 64) {
    tc_seconds *= 1.5;
  }
  cost.tensor_core_seconds = tc_seconds;

  // --- main-loop CUDA-core ops ---------------------------------------------------
  double cuda_ops = 0.0;
  bool cuda_fp16 = false;
  switch (pipe) {
    case GemmPipeline::kFp16:
    case GemmPipeline::kW8A8:
      break;  // epilogue-only dequant
    case GemmPipeline::kW4A16:
      // INT4 -> FP16 conversion: lop3-based extract + scale + zero-point
      // FMA, ~4 ALU ops per weight (TRT-LLM's fast interleaved converters).
      cuda_ops = n * k * 4.0;
      break;
    case GemmPipeline::kW4A4Atom:
      // INT32 partial-sum -> FP32 dequantization: Atom keeps INT32 and FP32
      // accumulator sets per output fragment and must convert + FMA at
      // tensor-core fragment granularity (k-slices of 32), not merely once
      // per group — ~4 FP32 ops per (output, k/32) slice (convert, scale
      // FMA, accumulator moves). This is the §3.2 "one partial-sum dequant
      // = 50 tensor-core MACs" bottleneck.
      cuda_ops = m * n * (k / 32.0) * 4.0;
      break;
    case GemmPipeline::kW4A8PerChannel:
      // RLP unpack: 3 logical ops per 8 weights; zero-point handled in the
      // epilogue (subtraction after multiplication).
      cuda_ops = n * k * (3.0 / 8.0);
      break;
    case GemmPipeline::kW4A8PerGroup:
      // RLP unpack (3/8) + level-2 dequant: 1 multiply + 1 vadd4 per 4
      // weights (sub-after-mul, §5.2.3).
      cuda_ops = n * k * (3.0 / 8.0 + 2.0 / 4.0);
      break;
    case GemmPipeline::kW4A8DGQ:
      // Separate dequant kernel: per-weight INT4->INT8 convert + extra
      // round-trip of INT8 weights through HBM (modelled as memory below).
      cuda_ops = n * k * 1.0;
      break;
  }
  // Pointer arithmetic without compute-aware reordering: one address
  // calculation per 4-channel fragment per output tile row (§5.2.1).
  if (shape.strided_weight_access) {
    cuda_ops += n * k / 4.0;
  }
  cost.cuda_core_seconds = cuda_ops / dev.cuda_ops_per_s(cuda_fp16);

  if (pipe == GemmPipeline::kW4A8DGQ) {
    // The dequantized INT8 weights are written + re-read through DRAM.
    cost.memory_seconds += 2.0 * n * k / dev.hbm_bytes_per_s();
  }

  const double compute = cost.tensor_core_seconds + cost.cuda_core_seconds;
  cost.seconds = std::max(cost.memory_seconds, compute);
  cost.memory_bound = cost.memory_seconds >= compute;
  return cost;
}

}  // namespace qserve::sim
