#include "simulator/attention_model.h"

#include <algorithm>

namespace qserve::sim {

AttentionKernelConfig AttentionKernelConfig::trt_kv8() {
  AttentionKernelConfig c;
  c.kv_bits = 8;  // static per-tensor scales: dequant is one FMA
  c.bit_trick_dequant = true;
  c.simplified_control = true;
  c.prefetch_scales = true;
  return c;
}

AttentionKernelConfig AttentionKernelConfig::naive_kv4() {
  AttentionKernelConfig c;
  c.kv_bits = 4;
  c.dynamic_scales = true;
  return c;  // all optimizations off: mask/shift/convert/mul/sub per element
}

AttentionKernelConfig AttentionKernelConfig::qserve_kv4() {
  AttentionKernelConfig c;
  c.kv_bits = 4;
  c.dynamic_scales = true;
  c.fp16_arithmetic = true;
  c.bit_trick_dequant = true;
  c.simplified_control = true;
  c.prefetch_scales = true;
  return c;
}

AttentionKernelConfig AttentionKernelConfig::fp16_baseline() {
  AttentionKernelConfig c;
  c.kv_bits = 16;
  c.simplified_control = true;
  c.prefetch_scales = true;
  return c;
}

AttentionCost attention_decode_cost(const DeviceSpec& dev,
                                    const AttentionKernelConfig& cfg,
                                    const AttentionShape& shape) {
  AttentionCost cost;
  const double kv_dim = double(shape.n_kv_heads) * shape.head_dim;
  const double elements = 2.0 * shape.batch * shape.seq_len * kv_dim;  // K+V

  // --- memory: KV codes + per-(token, head) dynamic parameters -----------------
  double bytes = elements * cfg.kv_bits / 8.0;
  if (cfg.dynamic_scales) {
    bytes += 2.0 * shape.batch * shape.seq_len * shape.n_kv_heads * 4.0;
  }
  // Query/output traffic is negligible (N=1) but keep it for small seq.
  bytes += 2.0 * shape.batch * shape.n_heads * shape.head_dim * 2.0 * 2.0;
  cost.memory_seconds = bytes / dev.hbm_bytes_per_s();

  // --- CUDA-core arithmetic of the fused kernel ---------------------------------
  // MAC work: every query head walks its kv head's cache: QK + SV.
  const double mac_elements =
      2.0 * shape.batch * shape.seq_len * double(shape.n_heads) *
      shape.head_dim;
  double ops = mac_elements * 2.0;  // mul + add
  // Dequantization per KV element.
  double dequant_ops_per_elem = 0.0;
  if (cfg.kv_bits < 16) {
    if (cfg.kv_bits == 4) {
      // Naive: mask, shift, int->float convert, mul, sub (§5.3: 5 ALU ops).
      dequant_ops_per_elem = cfg.bit_trick_dequant ? 2.0 : 5.0;
    } else {
      dequant_ops_per_elem = cfg.bit_trick_dequant ? 1.0 : 2.0;
    }
  }
  ops += elements * dequant_ops_per_elem;
  // Control flow + address calculation overheads: an unoptimized fused
  // kernel pays branchy page/group logic (~2 ops/element) and per-element
  // scale/zero address arithmetic (~1.5 ops/element) — the §5.3 items
  // removed by control simplification and asynchronous prefetch.
  if (!cfg.simplified_control) ops += elements * 2.0;
  if (cfg.dynamic_scales && !cfg.prefetch_scales) ops += elements * 1.5;
  if (cfg.hadamard_in_kernel) {
    // Per-token Hadamard transform of q/k: ~log2(D) ops per element of K.
    ops += shape.batch * double(shape.seq_len) * kv_dim * 7.0;
  }
  cost.cuda_seconds = ops / dev.cuda_ops_per_s(cfg.fp16_arithmetic);
  cost.ops_per_byte = ops / bytes;

  cost.seconds = std::max(cost.memory_seconds, cost.cuda_seconds);
  cost.compute_bound = cost.cuda_seconds > cost.memory_seconds;
  return cost;
}

double attention_prefill_seconds(const DeviceSpec& dev,
                                 const AttentionShape& shape,
                                 int prompt_len) {
  // Causal QK^T and PV GEMMs on FP16 tensor cores: 2 * (L^2/2) * H * D MACs.
  const double macs = double(shape.batch) * shape.n_heads * shape.head_dim *
                      double(prompt_len) * prompt_len;
  return 2.0 * macs / dev.tensor_ops_per_s(16);
}

}  // namespace qserve::sim
