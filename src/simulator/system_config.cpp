#include "simulator/system_config.h"

#include "common/check.h"

namespace qserve::sim {

bool SystemProfile::supports(const qserve::ModelConfig& m) const {
  switch (system) {
    case System::kAtomW4A4:
      // Atom's released system only supports Llama-2-7B (§6.3).
      return m.name == "Llama-2-7B" || m.name.rfind("toy", 0) == 0;
    case System::kQuarotW4A4:
      // QuaRot does not support GQA (§6.3).
      return m.n_heads == m.n_kv_heads;
    default:
      return true;
  }
}

SystemProfile system_profile(System s) {
  SystemProfile p;
  p.system = s;
  switch (s) {
    case System::kTrtFp16:
      p.name = "TRT-LLM-FP16";
      p.gemm = GemmPipeline::kFp16;
      p.attention = AttentionKernelConfig::fp16_baseline();
      p.weight_bits = 16;
      p.kv_bits = 16;
      break;
    case System::kTrtW4A16:
      p.name = "TRT-LLM-W4A16";
      p.gemm = GemmPipeline::kW4A16;
      p.attention = AttentionKernelConfig::fp16_baseline();
      p.weight_bits = 4;
      p.kv_bits = 16;
      break;
    case System::kTrtW8A8:
      p.name = "TRT-LLM-W8A8";
      p.gemm = GemmPipeline::kW8A8;
      p.attention = AttentionKernelConfig::trt_kv8();
      p.weight_bits = 8;
      p.kv_bits = 8;
      break;
    case System::kAtomW4A4:
      p.name = "Atom-W4A4";
      p.gemm = GemmPipeline::kW4A4Atom;
      p.attention = AttentionKernelConfig::naive_kv4();
      p.attention.bit_trick_dequant = true;  // Atom's kernels are tuned
      p.weight_bits = 4;
      p.kv_bits = 4;
      // Atom's research runtime (unfused activation quantization/reordering
      // kernels, Python-side serving loop) reaches roughly half of TRT-LLM's
      // engineering efficiency end to end (Fig. 2b / Fig. 17).
      p.runtime_efficiency = 0.55;
      break;
    case System::kQuarotW4A4:
      p.name = "QuaRot-W4A4";
      p.gemm = GemmPipeline::kW4A4Atom;
      p.attention = AttentionKernelConfig::naive_kv4();
      p.attention.hadamard_in_kernel = true;
      p.weight_bits = 4;
      p.kv_bits = 4;
      p.online_transform_ops_per_elem = 7.0;  // online Hadamard (down_proj)
      p.runtime_efficiency = 0.50;
      p.paged_kv = false;
      break;
    case System::kQServePerChannel:
      p.name = "QServe-W4A8KV4";
      p.gemm = GemmPipeline::kW4A8PerChannel;
      p.attention = AttentionKernelConfig::qserve_kv4();
      p.weight_bits = 4;
      p.kv_bits = 4;
      break;
    case System::kQServePerGroup:
      p.name = "QServe-W4A8KV4-g128";
      p.gemm = GemmPipeline::kW4A8PerGroup;
      p.attention = AttentionKernelConfig::qserve_kv4();
      p.weight_bits = 4;
      p.kv_bits = 4;
      break;
  }
  return p;
}

std::vector<System> all_systems() {
  return {System::kTrtFp16,    System::kTrtW4A16,
          System::kTrtW8A8,    System::kAtomW4A4,
          System::kQuarotW4A4, System::kQServePerChannel,
          System::kQServePerGroup};
}

System qserve_variant_for(const DeviceSpec& dev) {
  // §6.3: per-channel on A100, per-group on L40S (stronger CUDA cores make
  // the level-2 dequant cheap relative to bandwidth).
  return dev.fp32_cuda_tflops > 50 ? System::kQServePerGroup
                                   : System::kQServePerChannel;
}

}  // namespace qserve::sim
