// Serving-system configurations for the cross-system comparisons
// (Fig. 2b, Fig. 15, Fig. 17, Table 4).
#pragma once

#include <string>
#include <vector>

#include "model/config.h"
#include "simulator/attention_model.h"
#include "simulator/gemm_model.h"

namespace qserve::sim {

enum class System {
  kTrtFp16,
  kTrtW4A16,
  kTrtW8A8,
  kAtomW4A4,
  kQuarotW4A4,
  kQServePerChannel,  // W4A8KV4 (A100 configuration)
  kQServePerGroup,    // W4A8KV4 g128 (L40S configuration)
};

struct SystemProfile {
  System system;
  std::string name;
  GemmPipeline gemm = GemmPipeline::kFp16;
  AttentionKernelConfig attention;
  int weight_bits = 16;
  int kv_bits = 16;
  // Extra CUDA-core ops per activation element for online transforms
  // (QuaRot's Hadamard before quantized GEMMs).
  double online_transform_ops_per_elem = 0.0;
  // End-to-end runtime efficiency relative to TRT-LLM-grade engineering
  // (§3.2 notes Atom/QuaRot's gap is partly "inefficient runtime").
  double runtime_efficiency = 1.0;
  bool paged_kv = true;  // QuaRot lacks paged attention (§6.1)

  bool supports(const qserve::ModelConfig& m) const;
};

SystemProfile system_profile(System s);
std::vector<System> all_systems();

// QServe picks per-channel on A100 and per-group on L40S (§6.3).
System qserve_variant_for(const DeviceSpec& dev);

}  // namespace qserve::sim
