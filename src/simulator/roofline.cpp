#include "simulator/roofline.h"

#include <algorithm>

namespace qserve::sim {

std::vector<RooflineCurve> gemm_roofline_curves(const DeviceSpec& dev) {
  return {
      {"FP16xFP16 (W16A16)", dev.fp16_tc_tops, 2.0},
      {"INT8xINT8 (W8A8)", dev.int8_tc_tops, 1.0},
      {"INT4xFP16 (W4A16)", dev.fp16_tc_tops, 0.5},
      {"INT4xINT8 (W4A8)", dev.int8_tc_tops, 0.5},
  };
}

std::vector<RooflineCurve> attention_roofline_curves(const DeviceSpec& dev) {
  // Attention runs on CUDA cores; KV traffic dominates.
  return {
      {"KV FP16", dev.fp32_cuda_tflops, 2.0},
      {"KV INT8", dev.fp32_cuda_tflops, 1.0},
      {"KV INT4", dev.fp32_cuda_tflops, 0.5},
  };
}

double attainable_tops(const DeviceSpec& dev, const RooflineCurve& curve,
                       double intensity) {
  // ops = 2 * I per element; memory seconds per element = B/bw.
  const double mem_tops =
      2.0 * intensity * (dev.hbm_gbps * 1e9) / curve.bytes_per_element / 1e12;
  return std::min(curve.peak_tops, mem_tops);
}

double turning_point(const DeviceSpec& dev, const RooflineCurve& curve) {
  return curve.peak_tops * 1e12 * curve.bytes_per_element /
         (2.0 * dev.hbm_gbps * 1e9);
}

}  // namespace qserve::sim
