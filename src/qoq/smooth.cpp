#include "qoq/smooth.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace qserve {

Tensor compute_smoothing_scales(const Tensor& acts, const Tensor& consumer,
                                float alpha) {
  QS_CHECK_EQ(acts.ndim(), 2);
  QS_CHECK_EQ(consumer.ndim(), 2);
  const int64_t d = acts.cols();
  QS_CHECK_EQ(consumer.cols(), d);

  Tensor lambda({d});
  for (int64_t j = 0; j < d; ++j) {
    float amax = 1e-5f;
    for (int64_t t = 0; t < acts.rows(); ++t)
      amax = std::max(amax, std::abs(acts.at2(t, j)));
    float wmax = 1e-5f;
    for (int64_t r = 0; r < consumer.rows(); ++r)
      wmax = std::max(wmax, std::abs(consumer.at2(r, j)));
    float lam = std::pow(amax, alpha) / std::pow(wmax, 1.0f - alpha);
    lambda[j] = clamp(lam, 1e-2f, 1e2f);
  }
  return lambda;
}

void fold_smoothing(const Tensor& lambda, Tensor& producer, Tensor& consumer,
                    int64_t producer_row_offset) {
  const int64_t d = lambda.numel();
  QS_CHECK_EQ(consumer.cols(), d);
  QS_CHECK_LE(producer_row_offset + d, producer.rows());
  for (int64_t j = 0; j < d; ++j) {
    const float lam = lambda[j];
    const float inv = 1.0f / lam;
    for (int64_t c = 0; c < producer.cols(); ++c)
      producer.at2(producer_row_offset + j, c) *= inv;
    for (int64_t r = 0; r < consumer.rows(); ++r)
      consumer.at2(r, j) *= lam;
  }
}

Tensor smooth_activations(const Tensor& acts, const Tensor& lambda) {
  QS_CHECK_EQ(acts.cols(), lambda.numel());
  Tensor out = acts;
  for (int64_t t = 0; t < out.rows(); ++t)
    for (int64_t j = 0; j < out.cols(); ++j) out.at2(t, j) /= lambda[j];
  return out;
}

}  // namespace qserve
