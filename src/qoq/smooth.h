// Block-output-module smoothing (§4.3.2, Fig. 9).
//
// Output modules (out_proj, down_proj) consume *block intermediate*
// activations (attention outputs / SwiGLU outputs). QoQ divides those
// intermediates by a per-channel factor λ and multiplies the consumer's
// weight columns by λ; the producer's weight rows absorb 1/λ, so the
// transform is exact in full precision. Unlike SmoothQuant, the migration
// strength α is near zero — λ is determined mostly by the *weights*
// (weight-range equalization), which §4.3.2 reports is required to avoid a
// 0.05 perplexity regression.
#pragma once

#include "tensor/tensor.h"

namespace qserve {

// λ_j = max|A_j|^α / max|W_j|^(1-α), clamped to a sane range. `acts` are
// calibration intermediates [m, d]; `consumer` is the output-module weight
// [n, d] whose input channels j are being balanced.
Tensor compute_smoothing_scales(const Tensor& acts, const Tensor& consumer,
                                float alpha = 0.05f);

// Fold: producer rows j (output channels) *= 1/λ_j, consumer columns j *= λ_j.
// Producer may have more rows than d when it computes several fused outputs
// (e.g. gate|up); `producer_row_offset` selects the span that feeds the
// consumer.
void fold_smoothing(const Tensor& lambda, Tensor& producer, Tensor& consumer,
                    int64_t producer_row_offset = 0);

// Apply λ^{-1} to activations (for equivalence tests).
Tensor smooth_activations(const Tensor& acts, const Tensor& lambda);

}  // namespace qserve
