#include "qoq/smooth_attention.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace qserve {

SmoothAttentionScales compute_smooth_attention_scales(const Tensor& keys,
                                                      int head_dim,
                                                      float alpha) {
  QS_CHECK_EQ(keys.ndim(), 2);
  QS_CHECK_EQ(keys.cols() % head_dim, 0);
  QS_CHECK_EQ(head_dim % 2, 0);
  const int64_t kd = keys.cols();
  const int64_t tokens = keys.rows();
  const int half = head_dim / 2;

  Tensor chan_max({kd});
  for (int64_t t = 0; t < tokens; ++t) {
    const float* kr = keys.row(t);
    for (int64_t c = 0; c < kd; ++c) {
      chan_max[c] = std::max(chan_max[c], std::abs(kr[c]));
    }
  }

  SmoothAttentionScales out;
  out.head_dim = head_dim;
  out.lambda = Tensor({kd});
  const int64_t n_kv_heads = kd / head_dim;
  for (int64_t h = 0; h < n_kv_heads; ++h) {
    const int64_t base = h * head_dim;
    for (int i = 0; i < half; ++i) {
      // RoPE pairing constraint (Eq. 9): one λ for channels i and i+D/2.
      const float m =
          std::max(chan_max[base + i], chan_max[base + i + half]);
      float lam = std::pow(std::max(m, 1e-5f), alpha);
      lam = std::max(lam, 1e-3f);
      out.lambda[base + i] = lam;
      out.lambda[base + i + half] = lam;
    }
  }
  return out;
}

void fold_smooth_attention(const SmoothAttentionScales& scales, int n_heads,
                           int n_kv_heads, Tensor& w_q, Tensor& w_k) {
  QS_CHECK_EQ(n_heads % n_kv_heads, 0);
  const int group = n_heads / n_kv_heads;
  const int64_t kd = scales.lambda.numel();
  QS_CHECK_EQ(w_k.rows(), kd);
  QS_CHECK_EQ(w_q.rows(), int64_t(n_heads) * scales.head_dim);

  // W_K rows (output channels) divided by λ -> K' = K Λ^{-1}.
  for (int64_t r = 0; r < kd; ++r) {
    const float inv = 1.0f / scales.lambda[r];
    for (int64_t c = 0; c < w_k.cols(); ++c) w_k.at2(r, c) *= inv;
  }
  // W_Q rows multiplied by the λ of the matching key channel -> Q' = Q Λ.
  for (int64_t r = 0; r < w_q.rows(); ++r) {
    const int64_t q_head = r / scales.head_dim;
    const int64_t dim = r % scales.head_dim;
    const int64_t kv_head = q_head / group;
    const float lam = scales.lambda[kv_head * scales.head_dim + dim];
    for (int64_t c = 0; c < w_q.cols(); ++c) w_q.at2(r, c) *= lam;
  }
}

Tensor smooth_keys(const Tensor& keys, const SmoothAttentionScales& scales) {
  QS_CHECK_EQ(keys.cols(), scales.lambda.numel());
  Tensor out = keys;
  for (int64_t t = 0; t < out.rows(); ++t) {
    float* kr = out.row(t);
    for (int64_t c = 0; c < out.cols(); ++c) kr[c] /= scales.lambda[c];
  }
  return out;
}

Tensor scale_queries(const Tensor& queries,
                     const SmoothAttentionScales& scales, int n_heads) {
  const int64_t kd = scales.lambda.numel();
  const int64_t n_kv_heads = kd / scales.head_dim;
  QS_CHECK_EQ(n_heads % n_kv_heads, 0);
  const int64_t group = n_heads / n_kv_heads;
  QS_CHECK_EQ(queries.cols(), int64_t(n_heads) * scales.head_dim);
  Tensor out = queries;
  for (int64_t t = 0; t < out.rows(); ++t) {
    float* qr = out.row(t);
    for (int64_t c = 0; c < out.cols(); ++c) {
      const int64_t q_head = c / scales.head_dim;
      const int64_t dim = c % scales.head_dim;
      qr[c] *= scales.lambda[(q_head / group) * scales.head_dim + dim];
    }
  }
  return out;
}

float channel_outlier_ratio(const Tensor& x) {
  QS_CHECK_EQ(x.ndim(), 2);
  const int64_t k = x.cols();
  std::vector<float> cmax(static_cast<size_t>(k), 0.0f);
  for (int64_t t = 0; t < x.rows(); ++t) {
    const float* xr = x.row(t);
    for (int64_t c = 0; c < k; ++c)
      cmax[size_t(c)] = std::max(cmax[size_t(c)], std::abs(xr[c]));
  }
  std::vector<float> sorted = cmax;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const float median = std::max(sorted[sorted.size() / 2], 1e-9f);
  const float peak = *std::max_element(cmax.begin(), cmax.end());
  return peak / median;
}

}  // namespace qserve
