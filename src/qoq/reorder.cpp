#include "qoq/reorder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace qserve {

std::vector<int> salience_order(const Tensor& calib_acts) {
  QS_CHECK_EQ(calib_acts.ndim(), 2);
  const int64_t k = calib_acts.cols();
  std::vector<float> salience(static_cast<size_t>(k), 0.0f);
  for (int64_t t = 0; t < calib_acts.rows(); ++t) {
    const float* xr = calib_acts.row(t);
    for (int64_t c = 0; c < k; ++c)
      salience[size_t(c)] = std::max(salience[size_t(c)], std::abs(xr[c]));
  }
  // Sort by *bucketed* salience (quarter-octave log buckets), stable within
  // a bucket: channels with genuinely different magnitudes are grouped
  // together, while near-uniform salience (e.g. after Hadamard rotation)
  // degenerates to the identity permutation instead of an arbitrary shuffle
  // that would scramble naturally-correlated quantization groups.
  auto bucket = [](float s) {
    return static_cast<int>(std::floor(std::log2(std::max(s, 1e-20f)) * 4.0f));
  };
  std::vector<int> perm(static_cast<size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return bucket(salience[size_t(a)]) > bucket(salience[size_t(b)]);
  });
  return perm;
}

Tensor permute_columns(const Tensor& x, const std::vector<int>& perm) {
  QS_CHECK_EQ(x.ndim(), 2);
  QS_CHECK_EQ(x.cols(), static_cast<int64_t>(perm.size()));
  Tensor out({x.rows(), x.cols()});
  for (int64_t t = 0; t < x.rows(); ++t) {
    const float* src = x.row(t);
    float* dst = out.row(t);
    for (size_t c = 0; c < perm.size(); ++c) dst[c] = src[perm[c]];
  }
  return out;
}

std::vector<int> invert_permutation(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<size_t>(perm[i])] = static_cast<int>(i);
  return inv;
}

}  // namespace qserve
