// Block-input rotation (§4.3.1, Fig. 8).
//
// QoQ suppresses activation outliers of *input modules* (qkv_proj, up_proj)
// by rotating the block input with a scaled Hadamard matrix Q (QQ^T = I):
// every rotated channel becomes a linear combination of all channels, so no
// single channel dominates. The rotation is absorbed statically:
//   - the producing weights (of the previous block's output module) are
//     multiplied by Q on the right,
//   - the consuming weights are multiplied by Q^T (here: W' = W Q, since the
//     layer computes y = x W^T and x' = x Q gives y = x' (W Q)^T... see
//     rotate_weight_for_rotated_input).
#pragma once

#include "tensor/tensor.h"

namespace qserve {

// Scaled Sylvester-Hadamard matrix H_n / sqrt(n); n must be a power of two.
Tensor hadamard_matrix(int64_t n);

// x' = x Q for activations [m, n].
Tensor rotate_activations(const Tensor& x, const Tensor& q);

// Given layer weights W [out, in] that consume a rotated input x' = x Q,
// produce W' = W Q so that x' W'^T = x Q Q^T W^T = x W^T.
Tensor rotate_weight_for_rotated_input(const Tensor& w, const Tensor& q);

// Given producer weights W [out, in] whose *output* feeds the rotation,
// produce W' = Q^T W (rows mixed) so the produced activations arrive
// pre-rotated: x' = x_prev W'^T = (x_prev W^T) Q.
Tensor rotate_weight_producing_rotated_output(const Tensor& w,
                                              const Tensor& q);

// In-place fast Walsh–Hadamard transform of each row (unscaled), used to
// apply the rotation in O(n log n) for large hidden sizes.
void fwht_rows_inplace(Tensor& x);

}  // namespace qserve
