// SmoothAttention (§4.2).
//
// Key caches have fixed per-head outlier channels (~10x typical magnitude);
// KV4's 16 levels cannot absorb them. SmoothAttention rescales
//   Q' = Q Λ,  K' = K Λ^{-1},  Λ = diag(λ),  λ_i = max(|K_i|)^α
// which is exact (Q'K'^T = QK^T) because queries are never quantized. RoPE
// pairs channel i with i + D/2 inside each head, so commuting the scaling
// past RoPE requires λ_i = λ_{i+D/2} (Eq. 9). The scales are folded into
// W_Q / W_K offline, so the runtime cost is zero.
#pragma once

#include "tensor/tensor.h"

namespace qserve {

struct SmoothAttentionScales {
  // One λ per key channel, length n_kv_heads * head_dim, already satisfying
  // the RoPE pairing constraint.
  Tensor lambda;
  int head_dim = 0;
};

// Compute λ from calibration post-RoPE keys K [tokens, n_kv_heads*head_dim].
SmoothAttentionScales compute_smooth_attention_scales(const Tensor& keys,
                                                      int head_dim,
                                                      float alpha = 0.5f);

// Fold Λ into the projection weights:
//   W_Q[out=q_channel, :] *= λ(kv_channel(q_channel))
//   W_K[out=k_channel, :] /= λ(k_channel)
// For GQA, each query head reuses the λ of its key head (q head h -> kv head
// h / (n_heads / n_kv_heads)).
void fold_smooth_attention(const SmoothAttentionScales& scales, int n_heads,
                           int n_kv_heads, Tensor& w_q, Tensor& w_k);

// Apply Λ^{-1} directly to key activations (used by tests and by the
// visualization bench to reproduce Figure 7).
Tensor smooth_keys(const Tensor& keys, const SmoothAttentionScales& scales);

// Apply Λ to query activations (Q' = QΛ); with GQA each query head uses its
// key head's λ.
Tensor scale_queries(const Tensor& queries,
                     const SmoothAttentionScales& scales, int n_heads);

// Outlier diagnostic used by Figure 7: ratio of the largest per-channel
// abs-max to the median per-channel abs-max.
float channel_outlier_ratio(const Tensor& x);

}  // namespace qserve
