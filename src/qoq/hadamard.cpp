#include "qoq/hadamard.h"

#include <cmath>

#include "common/math_util.h"

namespace qserve {

Tensor hadamard_matrix(int64_t n) {
  QS_CHECK_MSG(is_pow2(n), "Hadamard size must be a power of two, got " << n);
  Tensor h({n, n});
  const float scale = 1.0f / std::sqrt(float(n));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      // H[r][c] = (-1)^{popcount(r & c)} (Sylvester construction).
      const int bits = __builtin_popcountll(static_cast<uint64_t>(r & c));
      h.at2(r, c) = (bits & 1) ? -scale : scale;
    }
  }
  return h;
}

Tensor rotate_activations(const Tensor& x, const Tensor& q) {
  QS_CHECK_EQ(x.cols(), q.rows());
  const int64_t m = x.rows(), n = q.cols();
  Tensor y({m, n});
  for (int64_t t = 0; t < m; ++t) {
    const float* xr = x.row(t);
    for (int64_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (int64_t i = 0; i < q.rows(); ++i)
        acc += double(xr[i]) * double(q.at2(i, c));
      y.at2(t, c) = static_cast<float>(acc);
    }
  }
  return y;
}

Tensor rotate_weight_for_rotated_input(const Tensor& w, const Tensor& q) {
  QS_CHECK_EQ(w.cols(), q.rows());
  const int64_t n = w.rows(), k = w.cols();
  Tensor out({n, k});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (int64_t i = 0; i < k; ++i)
        acc += double(w.at2(r, i)) * double(q.at2(i, c));
      out.at2(r, c) = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor rotate_weight_producing_rotated_output(const Tensor& w,
                                              const Tensor& q) {
  QS_CHECK_EQ(w.rows(), q.rows());
  const int64_t n = w.rows(), k = w.cols();
  Tensor out({n, k});
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i)
        acc += double(q.at2(i, r)) * double(w.at2(i, c));
      out.at2(r, c) = static_cast<float>(acc);
    }
  }
  return out;
}

void fwht_rows_inplace(Tensor& x) {
  QS_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.cols();
  QS_CHECK(is_pow2(n));
  const float scale = 1.0f / std::sqrt(float(n));
  for (int64_t t = 0; t < x.rows(); ++t) {
    float* row = x.row(t);
    for (int64_t len = 1; len < n; len <<= 1) {
      for (int64_t i = 0; i < n; i += len << 1) {
        for (int64_t j = i; j < i + len; ++j) {
          const float a = row[j], b = row[j + len];
          row[j] = a + b;
          row[j + len] = a - b;
        }
      }
    }
    for (int64_t c = 0; c < n; ++c) row[c] *= scale;
  }
}

}  // namespace qserve
