// Activation-aware channel reordering (§4.3.3, Fig. 10).
//
// Group quantization suffers when a group mixes salient and non-salient
// channels: one outlier stretches the whole group's scale. QoQ sorts input
// channels by salience (max |X| over calibration data) so similar-magnitude
// channels share a group. The permutation is applied offline to the weight's
// input channels; at runtime the activation layout is permuted by the fused
// quantization kernel (zero extra cost), which `permute_columns` models.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace qserve {

// Descending-salience permutation from calibration activations [m, k].
std::vector<int> salience_order(const Tensor& calib_acts);

// Apply permutation to matrix columns: out[:, i] = in[:, perm[i]].
Tensor permute_columns(const Tensor& x, const std::vector<int>& perm);

// Inverse permutation.
std::vector<int> invert_permutation(const std::vector<int>& perm);

}  // namespace qserve
