#include "kvcache/paged_kv_cache.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/half.h"
#include "common/math_util.h"

namespace qserve {

int64_t kv_page_bytes(const KvCacheConfig& cfg) {
  const int64_t tokens = cfg.page_size;
  const int64_t span = int64_t(cfg.n_kv_heads) * cfg.head_dim;
  int64_t code_bits;
  switch (cfg.precision) {
    case KvPrecision::kFp16: code_bits = 16; break;
    case KvPrecision::kInt8: code_bits = 8; break;
    case KvPrecision::kInt4: code_bits = 4; break;
    default: code_bits = 16; break;
  }
  int64_t bytes = 2 * tokens * span * code_bits / 8;  // K and V codes
  if (cfg.precision != KvPrecision::kFp16 && !cfg.static_scales) {
    // FP16 scale + zero point per (token, head) for both K and V (§5.1).
    bytes += 2 * tokens * cfg.n_kv_heads * 2 * 2;
  }
  return bytes;
}

void PagedKvCache::Page::resize(const KvCacheConfig& cfg) {
  const size_t span =
      static_cast<size_t>(cfg.page_size) * cfg.n_kv_heads * cfg.head_dim;
  if (cfg.precision == KvPrecision::kFp16) {
    k_half.assign(span, 0);
    v_half.assign(span, 0);
  } else {
    const size_t code_bytes = span * static_cast<int>(cfg.precision) / 8;
    k_codes.assign(code_bytes, 0);
    v_codes.assign(code_bytes, 0);
    if (!cfg.static_scales) {
      const size_t heads =
          static_cast<size_t>(cfg.page_size) * cfg.n_kv_heads;
      k_params.assign(heads, {});
      v_params.assign(heads, {});
    }
  }
}

int64_t PagedKvCache::Page::payload_bytes() const {
  return static_cast<int64_t>(k_codes.size() + v_codes.size()) +
         2 * static_cast<int64_t>(k_half.size() + v_half.size()) +
         static_cast<int64_t>(sizeof(PackedKvParams)) *
             static_cast<int64_t>(k_params.size() + v_params.size());
}

void PagedKvCache::Page::copy_payload_from(const Page& src) {
  k_codes = src.k_codes;
  v_codes = src.v_codes;
  k_half = src.k_half;
  v_half = src.v_half;
  k_params = src.k_params;
  v_params = src.v_params;
}

int64_t PagedKvCache::measured_page_bytes() const {
  Page p;
  p.resize(cfg_);
  return p.payload_bytes();
}

PagedKvCache::PagedKvCache(const KvCacheConfig& cfg) : cfg_(cfg) {
  QS_CHECK_GT(cfg_.page_size, 0);
  QS_CHECK_GT(cfg_.n_kv_heads, 0);
  QS_CHECK_GT(cfg_.head_dim, 0);
  QS_CHECK_MSG(cfg_.max_pages > 0,
               "KV pool needs at least one page (kv_max_pages)");
  // Nibble packing stores two INT4 codes per byte, so a head vector must
  // span whole bytes.
  if (cfg_.precision == KvPrecision::kInt4)
    QS_CHECK_MSG(cfg_.head_dim % 2 == 0, "INT4 KV needs an even head_dim");
  if (cfg_.static_scales)
    QS_CHECK(cfg_.precision == KvPrecision::kInt8);
}

int PagedKvCache::alloc_sequence() {
  std::lock_guard<std::mutex> lk(mu_);
  int id;
  if (!free_seq_ids_.empty()) {
    id = free_seq_ids_.back();
    free_seq_ids_.pop_back();
  } else {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  auto& s = seqs_[static_cast<size_t>(id)];
  s.page_table.clear();
  s.length = 0;
  s.live = true;
  s.sink = 0;
  s.window = 0;
  s.slack = 0;
  s.ring_pages = 0;
  s.tail0 = 0;
  return id;
}

int64_t PagedKvCache::window_page_cap(const KvCacheConfig& cfg,
                                      int64_t sink_tokens,
                                      int64_t window_tokens,
                                      int64_t slack_tokens) {
  const int64_t p = cfg.page_size;
  return sink_tokens / p + window_tokens / p + ceil_div(slack_tokens, p) + 1;
}

void PagedKvCache::set_window(int seq, int64_t sink_tokens,
                              int64_t window_tokens, int64_t slack_tokens) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  auto& s = seqs_[static_cast<size_t>(seq)];
  const int64_t p = cfg_.page_size;
  QS_CHECK_MSG(window_tokens > 0, "attention window must be positive (got "
                                      << window_tokens << ")");
  QS_CHECK_MSG(window_tokens % p == 0,
               "attention window " << window_tokens
                                   << " must be a multiple of the KV page "
                                      "size "
                                   << p << " (the ring recycles whole pages)");
  QS_CHECK_MSG(sink_tokens >= 0 && sink_tokens % p == 0,
               "sink_tokens " << sink_tokens
                              << " must be a non-negative multiple of the KV "
                                 "page size "
                              << p);
  QS_CHECK_GE(slack_tokens, 0);
  QS_CHECK_MSG(s.window == 0,
               "sequence already has a window installed");
  const int64_t ring_pages =
      window_tokens / p + ceil_div(slack_tokens, p) + 1;
  // The existing pages must land on identity slots of the new layout: the
  // window has to be installed before the sequence outgrows sinks + ring.
  QS_CHECK_MSG(s.length <= sink_tokens + ring_pages * p,
               "set_window: sequence length " << s.length
                                              << " already exceeds sinks + "
                                                 "window + slack");
  s.sink = sink_tokens;
  s.window = window_tokens;
  s.slack = slack_tokens;
  s.ring_pages = ring_pages;
  s.tail0 = sink_tokens;
}

int64_t PagedKvCache::grow_need_locked(const Sequence& s, int64_t n) const {
  if (n <= 0) return 0;
  int64_t need = 0;
  // CoW copy of a shared tail page the first token would land in.
  if (s.length % cfg_.page_size != 0) {
    const int64_t tslot = page_slot(s, s.length / cfg_.page_size);
    if (pages_[static_cast<size_t>(
                   s.page_table[static_cast<size_t>(tslot)])].refcount > 1)
      ++need;
  }
  // Page-boundary crossings: growth slots and holes take a fresh page; a
  // ring slot whose occupant is shared is replaced by a fresh page (the
  // shared bytes stay with their other owners); a privately-owned ring slot
  // is reused in place for free.
  int64_t table_size = static_cast<int64_t>(s.page_table.size());
  for (int64_t pos = round_up(s.length, cfg_.page_size);
       pos < s.length + n; pos += cfg_.page_size) {
    const int64_t slot = page_slot(s, pos / cfg_.page_size);
    if (slot >= table_size) {
      ++need;
      table_size = slot + 1;
    } else {
      const int pid = s.page_table[static_cast<size_t>(slot)];
      if (pid < 0 || pages_[static_cast<size_t>(pid)].refcount > 1) ++need;
    }
  }
  return need;
}

int PagedKvCache::ring_advance_locked(Sequence& s, int64_t pi) {
  const int64_t slot = page_slot(s, pi);
  if (slot == static_cast<int64_t>(s.page_table.size())) {
    s.page_table.push_back(alloc_page_locked());
    return s.page_table.back();
  }
  QS_CHECK_LT(slot, static_cast<int64_t>(s.page_table.size()));
  int& pid = s.page_table[static_cast<size_t>(slot)];
  // The slot's previous occupant was logical page pi - ring_pages; its
  // tokens leave residency now (they are already outside every future row's
  // window by the ring-sizing argument in the header).
  s.tail0 = std::max(s.tail0, (pi - s.ring_pages + 1) * cfg_.page_size);
  if (pid < 0) {
    // Hole left by a truncation across the ring: take a fresh page.
    pid = alloc_page_locked();
    return pid;
  }
  Page& p = pages_[static_cast<size_t>(pid)];
  QS_CHECK_GT(p.refcount, 0);
  if (p.refcount == 1) {
    // In-place reuse: same physical page, new logical tokens. Outstanding
    // views of the departed logical page must go stale.
    p.generation.fetch_add(1, std::memory_order_relaxed);
    recycled_.fetch_add(1, std::memory_order_relaxed);
    return pid;
  }
  // Shared with a fork or prefix-cache entry: those owners keep the bytes
  // (immutable, generation untouched); this sequence swaps in a fresh page.
  // Allocate first — it may throw (pool exhausted / injected fault) with
  // nothing mutated yet.
  const int npid = alloc_page_locked();
  release_page_locked(pid);
  pid = npid;
  recycled_.fetch_add(1, std::memory_order_relaxed);
  return pid;
}

void PagedKvCache::release_page_locked(int pid) {
  Page& p = pages_[static_cast<size_t>(pid)];
  QS_CHECK_GT(p.refcount, 0);
  if (--p.refcount > 0) {
    // Other sequences still own the page; it stays allocated, its bytes and
    // generation untouched (their SeqViews remain valid).
    if (p.refcount == 1) shared_pages_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  // Last reference: invalidate outstanding SeqViews before the page can be
  // recycled.
  p.generation.fetch_add(1, std::memory_order_relaxed);
  free_page_ids_.push_back(pid);
  used_pages_.fetch_sub(1, std::memory_order_relaxed);
}

PagedKvCache::Page& PagedKvCache::ensure_private_locked(Sequence& s,
                                                        int64_t page_index) {
  const int pid = s.page_table[static_cast<size_t>(page_index)];
  Page& p = pages_[static_cast<size_t>(pid)];
  QS_CHECK_GT(p.refcount, 0);
  if (p.refcount == 1) return p;
  // Copy-on-write: allocate first (may throw — pool exhausted or injected
  // fault — with nothing mutated yet), copy the shared payload, then retarget
  // this sequence's table entry. The shared original keeps its generation:
  // its bytes never change, so the other owners' views stay valid.
  const int npid = alloc_page_locked();
  Page& np = pages_[static_cast<size_t>(npid)];
  np.copy_payload_from(p);
  np.refcount = 1;
  --p.refcount;
  if (p.refcount == 1) shared_pages_.fetch_sub(1, std::memory_order_relaxed);
  s.page_table[static_cast<size_t>(page_index)] = npid;
  cow_copies_.fetch_add(1, std::memory_order_relaxed);
  return np;
}

void PagedKvCache::free_sequence(int seq) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  auto& s = seqs_[static_cast<size_t>(seq)];
  for (int pid : s.page_table)
    if (pid >= 0) release_page_locked(pid);
  s.page_table.clear();
  s.length = 0;
  s.live = false;
  free_seq_ids_.push_back(seq);
}

int PagedKvCache::fork_sequence(int src, int64_t upto_len) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(src));
  auto& source = seqs_[static_cast<size_t>(src)];
  QS_CHECK_MSG(upto_len >= 0 && upto_len <= source.length,
               "fork_sequence upto_len " << upto_len << " outside [0, "
                                         << source.length << "]");
  // A windowed source is forkable only over pages that can never have been
  // recycled: the sinks always qualify, and any prefix qualifies while the
  // ring has not recycled yet (tail0 still at the sink boundary — then every
  // logical page still sits at its identity slot with its original bytes).
  QS_CHECK_MSG(source.window == 0 || upto_len <= source.sink ||
                   source.tail0 == source.sink,
               "fork_sequence on a windowed sequence may only cover "
               "never-recycled pages (sinks, or any prefix before the first "
               "recycle)");
  int id;
  if (!free_seq_ids_.empty()) {
    id = free_seq_ids_.back();
    free_seq_ids_.pop_back();
  } else {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  // seqs_ may have grown; re-resolve the source reference.
  auto& sp = seqs_[static_cast<size_t>(src)];
  auto& d = seqs_[static_cast<size_t>(id)];
  const int64_t n_pages = ceil_div(upto_len, int64_t(cfg_.page_size));
  d.page_table.clear();
  d.page_table.reserve(static_cast<size_t>(n_pages));
  for (int64_t pi = 0; pi < n_pages; ++pi) {
    const int pid = sp.page_table[static_cast<size_t>(pi)];
    Page& p = pages_[static_cast<size_t>(pid)];
    ++p.refcount;
    if (p.refcount == 2) shared_pages_.fetch_add(1, std::memory_order_relaxed);
    d.page_table.push_back(pid);
  }
  d.length = upto_len;
  d.live = true;
  d.sink = 0;
  d.window = 0;
  d.slack = 0;
  d.ring_pages = 0;
  d.tail0 = 0;
  return id;
}

int64_t PagedKvCache::seq_shared_pages(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  int64_t n = 0;
  for (int pid : seqs_[static_cast<size_t>(seq)].page_table)
    if (pid >= 0 && pages_[static_cast<size_t>(pid)].refcount > 1) ++n;
  return n;
}

std::vector<uint32_t> PagedKvCache::page_generations(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  std::vector<uint32_t> gens;
  gens.reserve(s.page_table.size());
  for (int pid : s.page_table) {
    QS_CHECK_GE(pid, 0);  // never called on a sequence with ring holes
    gens.push_back(pages_[static_cast<size_t>(pid)].generation.load(
        std::memory_order_relaxed));
  }
  return gens;
}

void PagedKvCache::truncate_sequence(int seq, int64_t new_len) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  auto& s = seqs_[static_cast<size_t>(seq)];
  QS_CHECK_MSG(new_len >= 0 && new_len <= s.length,
               "truncate_sequence target " << new_len
                                           << " outside [0, " << s.length
                                           << "]");
  if (new_len == s.length) return;
  const int64_t keep_pages = ceil_div(new_len, cfg_.page_size);
  if (s.window == 0) {
    for (int64_t pi = keep_pages;
         pi < static_cast<int64_t>(s.page_table.size()); ++pi)
      release_page_locked(s.page_table[static_cast<size_t>(pi)]);
    s.page_table.resize(static_cast<size_t>(keep_pages));
  } else {
    // Windowed rollback: the ring's slack covers exactly the speculative
    // rollback depth — a deeper cut would expose positions whose pages were
    // already recycled.
    QS_CHECK_MSG(s.length - new_len <= s.slack,
                 "truncate_sequence rollback of " << (s.length - new_len)
                                                  << " tokens exceeds the "
                                                     "window slack "
                                                  << s.slack);
    // Release the removed logical pages' slots. Each is the slot's CURRENT
    // occupant (the slack bound keeps the removed span well inside one ring
    // revolution), and the slot's previous occupant was overwritten long
    // ago, so the slot becomes a hole until an append reaches it again. A
    // hole at the table's tail is popped instead, so a sequence still in
    // pure growth keeps today's dense-table behavior (and bitwise replay:
    // truncate-then-append re-allocates exactly as an untruncated run).
    const int64_t cur_pages = ceil_div(s.length, cfg_.page_size);
    for (int64_t pi = keep_pages; pi < cur_pages; ++pi) {
      const int64_t slot = page_slot(s, pi);
      int& pid = s.page_table[static_cast<size_t>(slot)];
      if (pid >= 0) release_page_locked(pid);
      pid = -1;
    }
    while (!s.page_table.empty() && s.page_table.back() < 0)
      s.page_table.pop_back();
  }
  // The last kept page loses its tail slots (and the next append rewrites
  // them), so pre-truncate views of it must go stale too. A new view() taken
  // after the rollback snapshots the bumped value and reads fine. A SHARED
  // boundary page is skipped: its bytes are immutable (the next append to
  // this sequence copies it on write, leaving the original intact), so the
  // other owners' views — and even this sequence's pre-truncate views of the
  // still-unchanged bytes — stay valid.
  if (new_len % cfg_.page_size != 0) {
    Page& last = pages_[static_cast<size_t>(
        s.page_table[static_cast<size_t>(page_slot(s, keep_pages - 1))])];
    if (last.refcount == 1)
      last.generation.fetch_add(1, std::memory_order_relaxed);
  }
  s.length = new_len;
}

int64_t PagedKvCache::seq_len(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  return seqs_[static_cast<size_t>(seq)].length;
}

bool PagedKvCache::is_live(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  return is_live_locked(seq);
}

bool PagedKvCache::is_live_locked(int seq) const {
  return seq >= 0 && seq < static_cast<int>(seqs_.size()) &&
         seqs_[static_cast<size_t>(seq)].live;
}

int PagedKvCache::alloc_page_locked() {
  // Injected allocation failure, thrown before any bookkeeping mutates. The
  // lock_guard in the caller unwinds cleanly; a batch append may have
  // claimed earlier tokens' slots already, which is consistent state — the
  // pages belong to the sequence and free_sequence() reclaims them all (the
  // serving engine converts this fault to preemption, which does exactly
  // that).
  fault::maybe_fail(fault::kKvAlloc);
  QS_CHECK_MSG(pages_in_use() < cfg_.max_pages, "KV cache pool exhausted");
  int pid;
  if (!free_page_ids_.empty()) {
    pid = free_page_ids_.back();
    free_page_ids_.pop_back();
  } else {
    pid = static_cast<int>(pages_.size());
    pages_.emplace_back();
  }
  Page& p = pages_[static_cast<size_t>(pid)];
  p.resize(cfg_);
  p.refcount = 1;
  used_pages_.fetch_add(1, std::memory_order_relaxed);
  return pid;
}

bool PagedKvCache::can_grow(int seq, int64_t tokens) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  return grow_need_locked(s, tokens) <= free_pages();
}

void PagedKvCache::append(int seq, const float* k, const float* v) {
  // Single-token fast path: no destination buffer, one lock round, zero heap
  // traffic — this is the per-layer decode hot path.
  Page* page_ptr;
  int64_t slot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    auto& s = seqs_[static_cast<size_t>(seq)];
    if (s.length % cfg_.page_size == 0) {
      page_ptr = &pages_[static_cast<size_t>(
          ring_advance_locked(s, s.length / cfg_.page_size))];
    } else {
      // Writing into the existing tail page: if it is shared (this sequence
      // was forked mid-page), copy it on write first.
      page_ptr = &ensure_private_locked(
          s, page_slot(s, s.length / cfg_.page_size));
    }
    slot = s.length % cfg_.page_size;
    ++s.length;
  }
  write_token(*page_ptr, slot, k, v);
}

int64_t PagedKvCache::append_reserve_locked(int seq, int64_t n) {
  auto& s = seqs_[static_cast<size_t>(seq)];
  // The ring's dry-run capacity simulation (and its recycling) assumes a
  // span stays inside one ring revolution — the slack the window was
  // installed with must cover every append span.
  QS_CHECK_MSG(s.window == 0 || n <= s.slack,
               "append span of " << n << " tokens exceeds the windowed "
                                 << "sequence's slack " << s.slack);
  // Capacity up front: growth pages, shared-slot replacements, plus one for
  // the copy-on-write of a shared tail page the first token would land in.
  // Checked before any sequence state mutates — seq_len never claims tokens
  // whose slots were not written.
  QS_CHECK_MSG(grow_need_locked(s, n) <= free_pages(),
               "KV cache pool exhausted");
  const int64_t pos0 = s.length;
  for (int64_t t = 0; t < n; ++t) {
    if (s.length % cfg_.page_size == 0) {
      ring_advance_locked(s, s.length / cfg_.page_size);
    } else {
      ensure_private_locked(s, page_slot(s, s.length / cfg_.page_size));
    }
    ++s.length;
  }
  return pos0;
}

int64_t PagedKvCache::append_reserve(int seq, int64_t n) {
  QS_CHECK_GT(n, 0);
  // Same fault-site draw as append_batch's entry: one kv_append draw per
  // reserved span, so TP and single-shard runs see identical fault
  // schedules.
  fault::maybe_fail(fault::kKvAppend);
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  return append_reserve_locked(seq, n);
}

void PagedKvCache::append_write_heads(int seq, int64_t pos0, const float* k,
                                      const float* v, int64_t n, int head0,
                                      int head1, int64_t row_stride) {
  QS_CHECK(head0 >= 0 && head0 <= head1 && head1 <= cfg_.n_kv_heads);
  QS_CHECK_GE(pos0, 0);
  if (n <= 0 || head0 == head1) return;
  // One short locked pass resolves the (page, slot) destinations — the
  // reserve already made every page private — then the quantize writes run
  // unlocked, concurrently with other shards filling other head ranges of
  // the same slots.
  struct Dest {
    Page* page;
    int64_t slot;
  };
  std::vector<Dest> dests(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    auto& s = seqs_[static_cast<size_t>(seq)];
    QS_CHECK_LE(pos0 + n, s.length);
    for (int64_t t = 0; t < n; ++t) {
      const int64_t tok = pos0 + t;
      Page& p = pages_[static_cast<size_t>(s.page_table[static_cast<size_t>(
          page_slot(s, tok / cfg_.page_size))])];
      QS_DCHECK(p.refcount == 1);  // reserve left the range privately owned
      dests[static_cast<size_t>(t)] = {&p, tok % cfg_.page_size};
    }
  }
  for (int64_t t = 0; t < n; ++t) {
    const Dest& d = dests[static_cast<size_t>(t)];
    write_token_heads(*d.page, d.slot, k + t * row_stride, v + t * row_stride,
                      head0, head1);
  }
}

void PagedKvCache::append_batch(int seq, const float* k, const float* v,
                                int64_t n) {
  QS_CHECK_GT(n, 0);
  // Fault site at the batch-append entry: every engine-driven append (decode
  // rows and prefill chunks alike go through append_batch) draws here, before
  // any state mutates.
  fault::maybe_fail(fault::kKvAppend);
  if (n == 1) return append(seq, k, v);
  // Bookkeeping under the lock: allocate every page the n tokens need and
  // resolve each token's (page, slot) destination. The quantize-into-page
  // writes below touch slots owned exclusively by this sequence, so they run
  // unlocked — and concurrently with other sequences' appends.
  struct Dest {
    Page* page;
    int64_t slot;
  };
  std::vector<Dest> dests(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    const int64_t pos0 = append_reserve_locked(seq, n);
    auto& s = seqs_[static_cast<size_t>(seq)];
    for (int64_t t = 0; t < n; ++t) {
      const int64_t tok = pos0 + t;
      dests[static_cast<size_t>(t)] = {
          &pages_[static_cast<size_t>(s.page_table[static_cast<size_t>(
              page_slot(s, tok / cfg_.page_size))])],
          tok % cfg_.page_size};
    }
  }
  const int64_t span = head_span();
  for (int64_t t = 0; t < n; ++t) {
    const Dest& d = dests[static_cast<size_t>(t)];
    write_token(*d.page, d.slot, k + t * span, v + t * span);
  }
}

void PagedKvCache::write_token(Page& page, int64_t slot, const float* k,
                               const float* v) {
  write_token_heads(page, slot, k, v, 0, cfg_.n_kv_heads);
}

void PagedKvCache::write_token_heads(Page& page, int64_t slot, const float* k,
                                     const float* v, int head0, int head1) {
  const int64_t dim = cfg_.head_dim;

  if (cfg_.precision == KvPrecision::kFp16) {
    for (int h = head0; h < head1; ++h) {
      const int64_t off = slot * head_span() + int64_t(h) * dim;
      const float* ks = k + int64_t(h - head0) * dim;
      const float* vs = v + int64_t(h - head0) * dim;
      for (int64_t i = 0; i < dim; ++i) {
        page.k_half[static_cast<size_t>(off + i)] =
            detail::float_to_half_bits(ks[i]);
        page.v_half[static_cast<size_t>(off + i)] =
            detail::float_to_half_bits(vs[i]);
      }
    }
  } else if (cfg_.static_scales) {
    StaticKv8Params pk{cfg_.static_scale_k}, pv{cfg_.static_scale_v};
    for (int h = head0; h < head1; ++h) {
      const int64_t off = slot * head_span() + int64_t(h) * dim;
      const float* ks = k + int64_t(h - head0) * dim;
      const float* vs = v + int64_t(h - head0) * dim;
      for (int64_t i = 0; i < dim; ++i) {
        int8_t ck, cv;
        kv8_static_quantize(ks + i, 1, pk, &ck);
        kv8_static_quantize(vs + i, 1, pv, &cv);
        page.k_codes[static_cast<size_t>(off + i)] = static_cast<uint8_t>(ck);
        page.v_codes[static_cast<size_t>(off + i)] = static_cast<uint8_t>(cv);
      }
    }
  } else {
    const int bits = static_cast<int>(cfg_.precision);
    // kv_quantize emits one code per byte; INT4 packs pairs into the page.
    thread_local std::vector<uint8_t> scratch;
    if (bits == 4) scratch.resize(static_cast<size_t>(cfg_.head_dim));
    auto store = [&](const float* src, int h, std::vector<uint8_t>& codes,
                     std::vector<PackedKvParams>& params) {
      const int64_t hoff = code_offset(slot, h);
      const size_t pidx = static_cast<size_t>(slot * cfg_.n_kv_heads + h);
      KvQuantParams p;
      if (bits == 4) {
        p = kv_quantize(src, cfg_.head_dim, 4, scratch.data());
        kv_pack_nibbles(scratch.data(), cfg_.head_dim, codes.data() + hoff);
      } else {
        p = kv_quantize(src, cfg_.head_dim, 8, codes.data() + hoff);
      }
      // kv_quantize already rounded scale/zero to FP16, so storing the bits
      // is lossless.
      params[pidx] = {Half(p.scale).bits(), Half(p.zero).bits()};
    };
    for (int h = head0; h < head1; ++h) {
      store(k + int64_t(h - head0) * dim, h, page.k_codes, page.k_params);
      store(v + int64_t(h - head0) * dim, h, page.v_codes, page.v_params);
    }
  }
}

const PagedKvCache::Page* PagedKvCache::locate(int seq, int64_t token,
                                               int head) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(token >= 0 && token < s.length);
  QS_CHECK(head >= 0 && head < cfg_.n_kv_heads);
  // A windowed sequence only holds the sinks and the retained tail; reading
  // a recycled position is a caller bug, not a silent garbage read.
  QS_CHECK_MSG(s.window == 0 || token < s.sink || token >= s.tail0,
               "read of recycled position " << token
                                            << " (resident: [0, " << s.sink
                                            << ") and [" << s.tail0 << ", "
                                            << s.length << "))");
  return &pages_[static_cast<size_t>(
      s.page_table[static_cast<size_t>(page_slot(s, token / cfg_.page_size))])];
}

void PagedKvCache::read_head(const Page& page, int64_t token, int head,
                             bool is_k, float* out) const {
  const int64_t slot = token % cfg_.page_size;
  if (cfg_.precision == KvPrecision::kFp16) {
    const int64_t hoff = slot * head_span() + int64_t(head) * cfg_.head_dim;
    const auto& fp = is_k ? page.k_half : page.v_half;
    for (int i = 0; i < cfg_.head_dim; ++i)
      out[i] = detail::half_bits_to_float(fp[static_cast<size_t>(hoff + i)]);
  } else if (cfg_.static_scales) {
    const int64_t hoff = code_offset(slot, head);
    StaticKv8Params p{is_k ? cfg_.static_scale_k : cfg_.static_scale_v};
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    for (int i = 0; i < cfg_.head_dim; ++i) {
      const int8_t c =
          static_cast<int8_t>(codes[static_cast<size_t>(hoff + i)]);
      kv8_static_dequantize(&c, 1, p, out + i);
    }
  } else {
    const int64_t hoff = code_offset(slot, head);
    const size_t pidx = static_cast<size_t>(slot * cfg_.n_kv_heads + head);
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    const auto& stored = (is_k ? page.k_params : page.v_params)[pidx];
    const KvQuantParams p{detail::half_bits_to_float(stored.scale_bits),
                          detail::half_bits_to_float(stored.zero_bits)};
    if (cfg_.precision == KvPrecision::kInt4) {
      kv_dequantize_packed4(codes.data() + hoff, cfg_.head_dim, p, out);
    } else {
      kv_dequantize(codes.data() + hoff, cfg_.head_dim, p, out);
    }
  }
}

void PagedKvCache::read_k(int seq, int64_t token, int head,
                          float* out) const {
  read_head(*locate(seq, token, head), token, head, /*is_k=*/true, out);
}

void PagedKvCache::read_v(int seq, int64_t token, int head,
                          float* out) const {
  read_head(*locate(seq, token, head), token, head, /*is_k=*/false, out);
}

PagedKvCache::SeqView PagedKvCache::view(int seq) const {
  SeqView v;
  v.cache_ = this;
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  v.length_ = s.length;
  auto add_range = [&](int64_t t0, int64_t t1) {
    // Emit per-page runs covering logical positions [t0, t1).
    int64_t t = t0;
    while (t < t1) {
      const int64_t slot0 = t % cfg_.page_size;
      const int64_t n = std::min(cfg_.page_size - slot0, t1 - t);
      const int pid = s.page_table[static_cast<size_t>(
          page_slot(s, t / cfg_.page_size))];
      QS_CHECK_GE(pid, 0);
      const Page& p = pages_[static_cast<size_t>(pid)];
      v.runs_.push_back({&p, p.generation.load(std::memory_order_relaxed), t,
                         slot0, n, v.visible_});
      v.visible_ += n;
      t += n;
    }
  };
  if (s.window == 0 || s.length <= s.sink + s.window) {
    // Full attention (or a windowed sequence still inside sinks + window —
    // nothing recycled, every position visible): one run per page, exactly
    // the pre-window view. `window >= context` is bit-identical to full
    // attention because it takes THIS path.
    add_range(0, s.length);
  } else {
    // Sinks, then the trailing window. The first tail run may start
    // mid-page; the positions between the sinks and the window's left edge
    // are invisible to the NEXT query even when still resident.
    add_range(0, s.sink);
    add_range(s.length - s.window, s.length);
  }
  return v;
}

const PagedKvCache::SeqView::Run& PagedKvCache::SeqView::run_for(
    int64_t token) const {
  QS_CHECK(token >= 0 && token < length_);
  // Runs are ordered by token0; find the last run starting at or before
  // `token` and check it actually covers it (a windowed view has a gap
  // between the sinks and the window).
  size_t lo = 0, hi = runs_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (runs_[mid].token0 <= token) lo = mid;
    else hi = mid;
  }
  QS_CHECK_MSG(!runs_.empty() && runs_[lo].token0 <= token &&
                   token < runs_[lo].token0 + runs_[lo].n_tokens,
               "position " << token << " is not visible in this view");
  return runs_[lo];
}

void PagedKvCache::SeqView::read_k(int64_t token, int head,
                                   float* out) const {
  QS_CHECK(head >= 0 && head < cache_->cfg_.n_kv_heads);
  const Run& r = run_for(token);
  // Stale view: the sequence was freed (e.g. preempted) after view().
  QS_DCHECK(r.page->generation.load(std::memory_order_relaxed) ==
            r.generation);
  cache_->read_head(*r.page, r.slot0 + (token - r.token0), head,
                    /*is_k=*/true, out);
}

void PagedKvCache::SeqView::read_v(int64_t token, int head,
                                   float* out) const {
  QS_CHECK(head >= 0 && head < cache_->cfg_.n_kv_heads);
  const Run& r = run_for(token);
  QS_DCHECK(r.page->generation.load(std::memory_order_relaxed) ==
            r.generation);
  cache_->read_head(*r.page, r.slot0 + (token - r.token0), head,
                    /*is_k=*/false, out);
}

int64_t PagedKvCache::SeqView::run_token0(int run) const {
  QS_CHECK(run >= 0 && run < num_page_runs());
  return runs_[static_cast<size_t>(run)].token0;
}

int64_t PagedKvCache::SeqView::run_score0(int run) const {
  QS_CHECK(run >= 0 && run < num_page_runs());
  return runs_[static_cast<size_t>(run)].score0;
}

cpu::KvHeadRun PagedKvCache::SeqView::head_run(int run, int head,
                                               bool is_k) const {
  QS_CHECK(run >= 0 && run < num_page_runs());
  QS_CHECK(head >= 0 && head < cache_->cfg_.n_kv_heads);
  const KvCacheConfig& cfg = cache_->cfg_;
  const Run& ri = runs_[static_cast<size_t>(run)];
  // Stale view: the sequence was freed (e.g. preempted) or the ring
  // recycled this page after view().
  QS_DCHECK(ri.page->generation.load(std::memory_order_relaxed) ==
            ri.generation);
  const Page& page = *ri.page;

  cpu::KvHeadRun r;
  r.n_tokens = ri.n_tokens;
  const int64_t span = cache_->head_span();
  if (cfg.precision == KvPrecision::kFp16) {
    r.kind = cpu::KvRunKind::kFp16;
    const auto& half = is_k ? page.k_half : page.v_half;
    r.half_bits =
        half.data() + ri.slot0 * span + int64_t(head) * cfg.head_dim;
    r.stride = span;  // elements
  } else if (cfg.static_scales) {
    r.kind = cpu::KvRunKind::kInt8Static;
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    r.codes = codes.data() + cache_->code_offset(ri.slot0, head);
    r.stride = span;  // bytes (one INT8 code per element)
    r.static_scale = is_k ? cfg.static_scale_k : cfg.static_scale_v;
  } else {
    r.kind = cfg.precision == KvPrecision::kInt4 ? cpu::KvRunKind::kInt4Dyn
                                                 : cpu::KvRunKind::kInt8Dyn;
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    const auto& params = is_k ? page.k_params : page.v_params;
    r.codes = codes.data() + cache_->code_offset(ri.slot0, head);
    r.stride = span * static_cast<int>(cfg.precision) / 8;  // bytes
    // Token t's {scale_bits, zero_bits} pair sits at params[t*HKV + head];
    // PackedKvParams is exactly two uint16s, so expose it as a uint16 view.
    r.params = reinterpret_cast<const uint16_t*>(
        params.data() + ri.slot0 * cfg.n_kv_heads + head);
    r.param_stride = 2 * cfg.n_kv_heads;
  }
  return r;
}

cpu::KvHeadRun PagedKvCache::SeqView::k_run(int run, int head) const {
  return head_run(run, head, /*is_k=*/true);
}

cpu::KvHeadRun PagedKvCache::SeqView::v_run(int run, int head) const {
  return head_run(run, head, /*is_k=*/false);
}

void PagedKvCache::gather(int seq, Tensor& k_out, Tensor& v_out) const {
  gather_heads(seq, k_out, v_out, 0, cfg_.n_kv_heads);
}

int64_t PagedKvCache::gather_visible(int seq, Tensor& k_out,
                                     Tensor& v_out) const {
  return gather_visible_heads(seq, k_out, v_out, 0, cfg_.n_kv_heads);
}

int64_t PagedKvCache::gather_visible_heads(int seq, Tensor& k_out,
                                           Tensor& v_out, int head0,
                                           int head1) const {
  QS_CHECK(head0 >= 0 && head0 <= head1 && head1 <= cfg_.n_kv_heads);
  // One locked pass resolves (page, slot) for every resident token — the
  // sinks and the retained tail, NOT just the last query's window, so a
  // prefill span's earliest row still finds its whole trailing window — then
  // the dequantization runs unlocked (same arithmetic as gather()).
  struct Src {
    const Page* page;
    int64_t slot;
  };
  std::vector<Src> srcs;
  int64_t tail0 = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    const auto& s = seqs_[static_cast<size_t>(seq)];
    QS_CHECK_MSG(s.window > 0,
                 "gather_visible on a full-attention sequence");
    const int64_t sink_eff = std::min(s.sink, s.length);
    tail0 = std::min(std::max(s.tail0, sink_eff), s.length);
    srcs.reserve(static_cast<size_t>(sink_eff + s.length - tail0));
    auto push_tok = [&](int64_t t) {
      const int pid = s.page_table[static_cast<size_t>(
          page_slot(s, t / cfg_.page_size))];
      QS_CHECK_GE(pid, 0);
      srcs.push_back(
          {&pages_[static_cast<size_t>(pid)], t % cfg_.page_size});
    };
    for (int64_t t = 0; t < sink_eff; ++t) push_tok(t);
    for (int64_t t = tail0; t < s.length; ++t) push_tok(t);
  }
  const int64_t span = int64_t(head1 - head0) * cfg_.head_dim;
  const int64_t rows = static_cast<int64_t>(srcs.size());
  k_out = Tensor({rows, span});
  v_out = Tensor({rows, span});
  for (int64_t r = 0; r < rows; ++r) {
    const Src& src = srcs[static_cast<size_t>(r)];
    float* kr = k_out.row(r);
    float* vr = v_out.row(r);
    for (int h = head0; h < head1; ++h) {
      read_head(*src.page, src.slot, h, /*is_k=*/true,
                kr + int64_t(h - head0) * cfg_.head_dim);
      read_head(*src.page, src.slot, h, /*is_k=*/false,
                vr + int64_t(h - head0) * cfg_.head_dim);
    }
  }
  return tail0;
}

void PagedKvCache::gather_heads(int seq, Tensor& k_out, Tensor& v_out,
                                int head0, int head1) const {
  QS_CHECK(head0 >= 0 && head0 <= head1 && head1 <= cfg_.n_kv_heads);
  // One locked page-table snapshot, then unlocked per-head dequantization —
  // the same arithmetic as read_k/read_v, head by head.
  const SeqView v = view(seq);
  const int64_t span = int64_t(head1 - head0) * cfg_.head_dim;
  k_out = Tensor({v.length(), span});
  v_out = Tensor({v.length(), span});
  for (int64_t t = 0; t < v.length(); ++t) {
    float* kr = k_out.row(t);
    float* vr = v_out.row(t);
    for (int h = head0; h < head1; ++h) {
      v.read_k(t, h, kr + int64_t(h - head0) * cfg_.head_dim);
      v.read_v(t, h, vr + int64_t(h - head0) * cfg_.head_dim);
    }
  }
}

}  // namespace qserve
