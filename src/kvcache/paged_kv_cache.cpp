#include "kvcache/paged_kv_cache.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/half.h"
#include "common/math_util.h"

namespace qserve {

int64_t kv_page_bytes(const KvCacheConfig& cfg) {
  const int64_t tokens = cfg.page_size;
  const int64_t span = int64_t(cfg.n_kv_heads) * cfg.head_dim;
  int64_t code_bits;
  switch (cfg.precision) {
    case KvPrecision::kFp16: code_bits = 16; break;
    case KvPrecision::kInt8: code_bits = 8; break;
    case KvPrecision::kInt4: code_bits = 4; break;
    default: code_bits = 16; break;
  }
  int64_t bytes = 2 * tokens * span * code_bits / 8;  // K and V codes
  if (cfg.precision != KvPrecision::kFp16 && !cfg.static_scales) {
    // FP16 scale + zero point per (token, head) for both K and V (§5.1).
    bytes += 2 * tokens * cfg.n_kv_heads * 2 * 2;
  }
  return bytes;
}

void PagedKvCache::Page::resize(const KvCacheConfig& cfg) {
  const size_t span =
      static_cast<size_t>(cfg.page_size) * cfg.n_kv_heads * cfg.head_dim;
  if (cfg.precision == KvPrecision::kFp16) {
    k_half.assign(span, 0);
    v_half.assign(span, 0);
  } else {
    const size_t code_bytes = span * static_cast<int>(cfg.precision) / 8;
    k_codes.assign(code_bytes, 0);
    v_codes.assign(code_bytes, 0);
    if (!cfg.static_scales) {
      const size_t heads =
          static_cast<size_t>(cfg.page_size) * cfg.n_kv_heads;
      k_params.assign(heads, {});
      v_params.assign(heads, {});
    }
  }
}

int64_t PagedKvCache::Page::payload_bytes() const {
  return static_cast<int64_t>(k_codes.size() + v_codes.size()) +
         2 * static_cast<int64_t>(k_half.size() + v_half.size()) +
         static_cast<int64_t>(sizeof(PackedKvParams)) *
             static_cast<int64_t>(k_params.size() + v_params.size());
}

void PagedKvCache::Page::copy_payload_from(const Page& src) {
  k_codes = src.k_codes;
  v_codes = src.v_codes;
  k_half = src.k_half;
  v_half = src.v_half;
  k_params = src.k_params;
  v_params = src.v_params;
}

int64_t PagedKvCache::measured_page_bytes() const {
  Page p;
  p.resize(cfg_);
  return p.payload_bytes();
}

PagedKvCache::PagedKvCache(const KvCacheConfig& cfg) : cfg_(cfg) {
  QS_CHECK_GT(cfg_.page_size, 0);
  QS_CHECK_GT(cfg_.n_kv_heads, 0);
  QS_CHECK_GT(cfg_.head_dim, 0);
  QS_CHECK_MSG(cfg_.max_pages > 0,
               "KV pool needs at least one page (kv_max_pages)");
  // Nibble packing stores two INT4 codes per byte, so a head vector must
  // span whole bytes.
  if (cfg_.precision == KvPrecision::kInt4)
    QS_CHECK_MSG(cfg_.head_dim % 2 == 0, "INT4 KV needs an even head_dim");
  if (cfg_.static_scales)
    QS_CHECK(cfg_.precision == KvPrecision::kInt8);
}

int PagedKvCache::alloc_sequence() {
  std::lock_guard<std::mutex> lk(mu_);
  int id;
  if (!free_seq_ids_.empty()) {
    id = free_seq_ids_.back();
    free_seq_ids_.pop_back();
  } else {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  auto& s = seqs_[static_cast<size_t>(id)];
  s.page_table.clear();
  s.length = 0;
  s.live = true;
  return id;
}

void PagedKvCache::release_page_locked(int pid) {
  Page& p = pages_[static_cast<size_t>(pid)];
  QS_CHECK_GT(p.refcount, 0);
  if (--p.refcount > 0) {
    // Other sequences still own the page; it stays allocated, its bytes and
    // generation untouched (their SeqViews remain valid).
    if (p.refcount == 1) shared_pages_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  // Last reference: invalidate outstanding SeqViews before the page can be
  // recycled.
  p.generation.fetch_add(1, std::memory_order_relaxed);
  free_page_ids_.push_back(pid);
  used_pages_.fetch_sub(1, std::memory_order_relaxed);
}

PagedKvCache::Page& PagedKvCache::ensure_private_locked(Sequence& s,
                                                        int64_t page_index) {
  const int pid = s.page_table[static_cast<size_t>(page_index)];
  Page& p = pages_[static_cast<size_t>(pid)];
  QS_CHECK_GT(p.refcount, 0);
  if (p.refcount == 1) return p;
  // Copy-on-write: allocate first (may throw — pool exhausted or injected
  // fault — with nothing mutated yet), copy the shared payload, then retarget
  // this sequence's table entry. The shared original keeps its generation:
  // its bytes never change, so the other owners' views stay valid.
  const int npid = alloc_page_locked();
  Page& np = pages_[static_cast<size_t>(npid)];
  np.copy_payload_from(p);
  np.refcount = 1;
  --p.refcount;
  if (p.refcount == 1) shared_pages_.fetch_sub(1, std::memory_order_relaxed);
  s.page_table[static_cast<size_t>(page_index)] = npid;
  cow_copies_.fetch_add(1, std::memory_order_relaxed);
  return np;
}

void PagedKvCache::free_sequence(int seq) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  auto& s = seqs_[static_cast<size_t>(seq)];
  for (int pid : s.page_table) release_page_locked(pid);
  s.page_table.clear();
  s.length = 0;
  s.live = false;
  free_seq_ids_.push_back(seq);
}

int PagedKvCache::fork_sequence(int src, int64_t upto_len) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(src));
  auto& source = seqs_[static_cast<size_t>(src)];
  QS_CHECK_MSG(upto_len >= 0 && upto_len <= source.length,
               "fork_sequence upto_len " << upto_len << " outside [0, "
                                         << source.length << "]");
  int id;
  if (!free_seq_ids_.empty()) {
    id = free_seq_ids_.back();
    free_seq_ids_.pop_back();
  } else {
    id = static_cast<int>(seqs_.size());
    seqs_.emplace_back();
  }
  // seqs_ may have grown; re-resolve the source reference.
  auto& sp = seqs_[static_cast<size_t>(src)];
  auto& d = seqs_[static_cast<size_t>(id)];
  const int64_t n_pages = ceil_div(upto_len, int64_t(cfg_.page_size));
  d.page_table.clear();
  d.page_table.reserve(static_cast<size_t>(n_pages));
  for (int64_t pi = 0; pi < n_pages; ++pi) {
    const int pid = sp.page_table[static_cast<size_t>(pi)];
    Page& p = pages_[static_cast<size_t>(pid)];
    ++p.refcount;
    if (p.refcount == 2) shared_pages_.fetch_add(1, std::memory_order_relaxed);
    d.page_table.push_back(pid);
  }
  d.length = upto_len;
  d.live = true;
  return id;
}

int64_t PagedKvCache::seq_shared_pages(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  int64_t n = 0;
  for (int pid : seqs_[static_cast<size_t>(seq)].page_table)
    if (pages_[static_cast<size_t>(pid)].refcount > 1) ++n;
  return n;
}

std::vector<uint32_t> PagedKvCache::page_generations(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  std::vector<uint32_t> gens;
  gens.reserve(s.page_table.size());
  for (int pid : s.page_table)
    gens.push_back(pages_[static_cast<size_t>(pid)].generation.load(
        std::memory_order_relaxed));
  return gens;
}

void PagedKvCache::truncate_sequence(int seq, int64_t new_len) {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  auto& s = seqs_[static_cast<size_t>(seq)];
  QS_CHECK_MSG(new_len >= 0 && new_len <= s.length,
               "truncate_sequence target " << new_len
                                           << " outside [0, " << s.length
                                           << "]");
  if (new_len == s.length) return;
  const int64_t keep_pages = ceil_div(new_len, cfg_.page_size);
  for (int64_t pi = keep_pages;
       pi < static_cast<int64_t>(s.page_table.size()); ++pi)
    release_page_locked(s.page_table[static_cast<size_t>(pi)]);
  s.page_table.resize(static_cast<size_t>(keep_pages));
  // The last kept page loses its tail slots (and the next append rewrites
  // them), so pre-truncate views of it must go stale too. A new view() taken
  // after the rollback snapshots the bumped value and reads fine. A SHARED
  // boundary page is skipped: its bytes are immutable (the next append to
  // this sequence copies it on write, leaving the original intact), so the
  // other owners' views — and even this sequence's pre-truncate views of the
  // still-unchanged bytes — stay valid.
  if (new_len % cfg_.page_size != 0) {
    Page& last = pages_[static_cast<size_t>(s.page_table.back())];
    if (last.refcount == 1)
      last.generation.fetch_add(1, std::memory_order_relaxed);
  }
  s.length = new_len;
}

int64_t PagedKvCache::seq_len(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  return seqs_[static_cast<size_t>(seq)].length;
}

bool PagedKvCache::is_live(int seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  return is_live_locked(seq);
}

bool PagedKvCache::is_live_locked(int seq) const {
  return seq >= 0 && seq < static_cast<int>(seqs_.size()) &&
         seqs_[static_cast<size_t>(seq)].live;
}

int PagedKvCache::alloc_page_locked() {
  // Injected allocation failure, thrown before any bookkeeping mutates. The
  // lock_guard in the caller unwinds cleanly; a batch append may have
  // claimed earlier tokens' slots already, which is consistent state — the
  // pages belong to the sequence and free_sequence() reclaims them all (the
  // serving engine converts this fault to preemption, which does exactly
  // that).
  fault::maybe_fail(fault::kKvAlloc);
  QS_CHECK_MSG(pages_in_use() < cfg_.max_pages, "KV cache pool exhausted");
  int pid;
  if (!free_page_ids_.empty()) {
    pid = free_page_ids_.back();
    free_page_ids_.pop_back();
  } else {
    pid = static_cast<int>(pages_.size());
    pages_.emplace_back();
  }
  Page& p = pages_[static_cast<size_t>(pid)];
  p.resize(cfg_);
  p.refcount = 1;
  used_pages_.fetch_add(1, std::memory_order_relaxed);
  return pid;
}

bool PagedKvCache::can_grow(int seq, int64_t tokens) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  const int64_t have =
      int64_t(s.page_table.size()) * cfg_.page_size - s.length;
  int64_t need_pages = ceil_div(std::max<int64_t>(tokens - have, 0),
                                cfg_.page_size);
  // A shared tail page is copied on the first write into it.
  if (tokens > 0 && s.length % cfg_.page_size != 0 &&
      pages_[static_cast<size_t>(s.page_table.back())].refcount > 1)
    ++need_pages;
  return need_pages <= free_pages();
}

void PagedKvCache::append(int seq, const float* k, const float* v) {
  // Single-token fast path: no destination buffer, one lock round, zero heap
  // traffic — this is the per-layer decode hot path.
  Page* page_ptr;
  int64_t slot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    auto& s = seqs_[static_cast<size_t>(seq)];
    if (s.length % cfg_.page_size == 0) {
      s.page_table.push_back(alloc_page_locked());
      page_ptr = &pages_[static_cast<size_t>(s.page_table.back())];
    } else {
      // Writing into the existing tail page: if it is shared (this sequence
      // was forked mid-page), copy it on write first.
      page_ptr = &ensure_private_locked(
          s, static_cast<int64_t>(s.page_table.size()) - 1);
    }
    slot = s.length % cfg_.page_size;
    ++s.length;
  }
  write_token(*page_ptr, slot, k, v);
}

int64_t PagedKvCache::append_reserve_locked(int seq, int64_t n) {
  auto& s = seqs_[static_cast<size_t>(seq)];
  // Capacity up front: growth pages, plus one for the copy-on-write of a
  // shared tail page the first token would land in. Checked before any
  // sequence state mutates — seq_len never claims tokens whose slots were
  // not written.
  int64_t need = ceil_div(s.length + n, cfg_.page_size) -
                 ceil_div(s.length, cfg_.page_size);
  if (s.length % cfg_.page_size != 0 &&
      pages_[static_cast<size_t>(s.page_table.back())].refcount > 1)
    ++need;
  QS_CHECK_MSG(need <= free_pages(), "KV cache pool exhausted");
  const int64_t pos0 = s.length;
  for (int64_t t = 0; t < n; ++t) {
    if (s.length % cfg_.page_size == 0) {
      s.page_table.push_back(alloc_page_locked());
    } else {
      ensure_private_locked(s,
                            static_cast<int64_t>(s.page_table.size()) - 1);
    }
    ++s.length;
  }
  return pos0;
}

int64_t PagedKvCache::append_reserve(int seq, int64_t n) {
  QS_CHECK_GT(n, 0);
  // Same fault-site draw as append_batch's entry: one kv_append draw per
  // reserved span, so TP and single-shard runs see identical fault
  // schedules.
  fault::maybe_fail(fault::kKvAppend);
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  return append_reserve_locked(seq, n);
}

void PagedKvCache::append_write_heads(int seq, int64_t pos0, const float* k,
                                      const float* v, int64_t n, int head0,
                                      int head1, int64_t row_stride) {
  QS_CHECK(head0 >= 0 && head0 <= head1 && head1 <= cfg_.n_kv_heads);
  QS_CHECK_GE(pos0, 0);
  if (n <= 0 || head0 == head1) return;
  // One short locked pass resolves the (page, slot) destinations — the
  // reserve already made every page private — then the quantize writes run
  // unlocked, concurrently with other shards filling other head ranges of
  // the same slots.
  struct Dest {
    Page* page;
    int64_t slot;
  };
  std::vector<Dest> dests(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    auto& s = seqs_[static_cast<size_t>(seq)];
    QS_CHECK_LE(pos0 + n, s.length);
    for (int64_t t = 0; t < n; ++t) {
      const int64_t tok = pos0 + t;
      Page& p = pages_[static_cast<size_t>(
          s.page_table[static_cast<size_t>(tok / cfg_.page_size)])];
      QS_DCHECK(p.refcount == 1);  // reserve left the range privately owned
      dests[static_cast<size_t>(t)] = {&p, tok % cfg_.page_size};
    }
  }
  for (int64_t t = 0; t < n; ++t) {
    const Dest& d = dests[static_cast<size_t>(t)];
    write_token_heads(*d.page, d.slot, k + t * row_stride, v + t * row_stride,
                      head0, head1);
  }
}

void PagedKvCache::append_batch(int seq, const float* k, const float* v,
                                int64_t n) {
  QS_CHECK_GT(n, 0);
  // Fault site at the batch-append entry: every engine-driven append (decode
  // rows and prefill chunks alike go through append_batch) draws here, before
  // any state mutates.
  fault::maybe_fail(fault::kKvAppend);
  if (n == 1) return append(seq, k, v);
  // Bookkeeping under the lock: allocate every page the n tokens need and
  // resolve each token's (page, slot) destination. The quantize-into-page
  // writes below touch slots owned exclusively by this sequence, so they run
  // unlocked — and concurrently with other sequences' appends.
  struct Dest {
    Page* page;
    int64_t slot;
  };
  std::vector<Dest> dests(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lk(mu_);
    QS_CHECK(is_live_locked(seq));
    const int64_t pos0 = append_reserve_locked(seq, n);
    auto& s = seqs_[static_cast<size_t>(seq)];
    for (int64_t t = 0; t < n; ++t) {
      const int64_t tok = pos0 + t;
      dests[static_cast<size_t>(t)] = {
          &pages_[static_cast<size_t>(
              s.page_table[static_cast<size_t>(tok / cfg_.page_size)])],
          tok % cfg_.page_size};
    }
  }
  const int64_t span = head_span();
  for (int64_t t = 0; t < n; ++t) {
    const Dest& d = dests[static_cast<size_t>(t)];
    write_token(*d.page, d.slot, k + t * span, v + t * span);
  }
}

void PagedKvCache::write_token(Page& page, int64_t slot, const float* k,
                               const float* v) {
  write_token_heads(page, slot, k, v, 0, cfg_.n_kv_heads);
}

void PagedKvCache::write_token_heads(Page& page, int64_t slot, const float* k,
                                     const float* v, int head0, int head1) {
  const int64_t dim = cfg_.head_dim;

  if (cfg_.precision == KvPrecision::kFp16) {
    for (int h = head0; h < head1; ++h) {
      const int64_t off = slot * head_span() + int64_t(h) * dim;
      const float* ks = k + int64_t(h - head0) * dim;
      const float* vs = v + int64_t(h - head0) * dim;
      for (int64_t i = 0; i < dim; ++i) {
        page.k_half[static_cast<size_t>(off + i)] =
            detail::float_to_half_bits(ks[i]);
        page.v_half[static_cast<size_t>(off + i)] =
            detail::float_to_half_bits(vs[i]);
      }
    }
  } else if (cfg_.static_scales) {
    StaticKv8Params pk{cfg_.static_scale_k}, pv{cfg_.static_scale_v};
    for (int h = head0; h < head1; ++h) {
      const int64_t off = slot * head_span() + int64_t(h) * dim;
      const float* ks = k + int64_t(h - head0) * dim;
      const float* vs = v + int64_t(h - head0) * dim;
      for (int64_t i = 0; i < dim; ++i) {
        int8_t ck, cv;
        kv8_static_quantize(ks + i, 1, pk, &ck);
        kv8_static_quantize(vs + i, 1, pv, &cv);
        page.k_codes[static_cast<size_t>(off + i)] = static_cast<uint8_t>(ck);
        page.v_codes[static_cast<size_t>(off + i)] = static_cast<uint8_t>(cv);
      }
    }
  } else {
    const int bits = static_cast<int>(cfg_.precision);
    // kv_quantize emits one code per byte; INT4 packs pairs into the page.
    thread_local std::vector<uint8_t> scratch;
    if (bits == 4) scratch.resize(static_cast<size_t>(cfg_.head_dim));
    auto store = [&](const float* src, int h, std::vector<uint8_t>& codes,
                     std::vector<PackedKvParams>& params) {
      const int64_t hoff = code_offset(slot, h);
      const size_t pidx = static_cast<size_t>(slot * cfg_.n_kv_heads + h);
      KvQuantParams p;
      if (bits == 4) {
        p = kv_quantize(src, cfg_.head_dim, 4, scratch.data());
        kv_pack_nibbles(scratch.data(), cfg_.head_dim, codes.data() + hoff);
      } else {
        p = kv_quantize(src, cfg_.head_dim, 8, codes.data() + hoff);
      }
      // kv_quantize already rounded scale/zero to FP16, so storing the bits
      // is lossless.
      params[pidx] = {Half(p.scale).bits(), Half(p.zero).bits()};
    };
    for (int h = head0; h < head1; ++h) {
      store(k + int64_t(h - head0) * dim, h, page.k_codes, page.k_params);
      store(v + int64_t(h - head0) * dim, h, page.v_codes, page.v_params);
    }
  }
}

const PagedKvCache::Page* PagedKvCache::locate(int seq, int64_t token,
                                               int head) const {
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  QS_CHECK(token >= 0 && token < s.length);
  QS_CHECK(head >= 0 && head < cfg_.n_kv_heads);
  return &pages_[static_cast<size_t>(
      s.page_table[static_cast<size_t>(token / cfg_.page_size)])];
}

void PagedKvCache::read_head(const Page& page, int64_t token, int head,
                             bool is_k, float* out) const {
  const int64_t slot = token % cfg_.page_size;
  if (cfg_.precision == KvPrecision::kFp16) {
    const int64_t hoff = slot * head_span() + int64_t(head) * cfg_.head_dim;
    const auto& fp = is_k ? page.k_half : page.v_half;
    for (int i = 0; i < cfg_.head_dim; ++i)
      out[i] = detail::half_bits_to_float(fp[static_cast<size_t>(hoff + i)]);
  } else if (cfg_.static_scales) {
    const int64_t hoff = code_offset(slot, head);
    StaticKv8Params p{is_k ? cfg_.static_scale_k : cfg_.static_scale_v};
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    for (int i = 0; i < cfg_.head_dim; ++i) {
      const int8_t c =
          static_cast<int8_t>(codes[static_cast<size_t>(hoff + i)]);
      kv8_static_dequantize(&c, 1, p, out + i);
    }
  } else {
    const int64_t hoff = code_offset(slot, head);
    const size_t pidx = static_cast<size_t>(slot * cfg_.n_kv_heads + head);
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    const auto& stored = (is_k ? page.k_params : page.v_params)[pidx];
    const KvQuantParams p{detail::half_bits_to_float(stored.scale_bits),
                          detail::half_bits_to_float(stored.zero_bits)};
    if (cfg_.precision == KvPrecision::kInt4) {
      kv_dequantize_packed4(codes.data() + hoff, cfg_.head_dim, p, out);
    } else {
      kv_dequantize(codes.data() + hoff, cfg_.head_dim, p, out);
    }
  }
}

void PagedKvCache::read_k(int seq, int64_t token, int head,
                          float* out) const {
  read_head(*locate(seq, token, head), token, head, /*is_k=*/true, out);
}

void PagedKvCache::read_v(int seq, int64_t token, int head,
                          float* out) const {
  read_head(*locate(seq, token, head), token, head, /*is_k=*/false, out);
}

PagedKvCache::SeqView PagedKvCache::view(int seq) const {
  SeqView v;
  v.cache_ = this;
  std::lock_guard<std::mutex> lk(mu_);
  QS_CHECK(is_live_locked(seq));
  const auto& s = seqs_[static_cast<size_t>(seq)];
  v.length_ = s.length;
  v.pages_.reserve(s.page_table.size());
  v.generations_.reserve(s.page_table.size());
  for (int pid : s.page_table) {
    const Page& p = pages_[static_cast<size_t>(pid)];
    v.pages_.push_back(&p);
    v.generations_.push_back(p.generation.load(std::memory_order_relaxed));
  }
  return v;
}

void PagedKvCache::SeqView::read_k(int64_t token, int head,
                                   float* out) const {
  QS_CHECK(token >= 0 && token < length_);
  QS_CHECK(head >= 0 && head < cache_->cfg_.n_kv_heads);
  const size_t pi = static_cast<size_t>(token / cache_->cfg_.page_size);
  // Stale view: the sequence was freed (e.g. preempted) after view().
  QS_DCHECK(pages_[pi]->generation.load(std::memory_order_relaxed) ==
            generations_[pi]);
  cache_->read_head(*pages_[pi], token, head, /*is_k=*/true, out);
}

void PagedKvCache::SeqView::read_v(int64_t token, int head,
                                   float* out) const {
  QS_CHECK(token >= 0 && token < length_);
  QS_CHECK(head >= 0 && head < cache_->cfg_.n_kv_heads);
  const size_t pi = static_cast<size_t>(token / cache_->cfg_.page_size);
  QS_DCHECK(pages_[pi]->generation.load(std::memory_order_relaxed) ==
            generations_[pi]);
  cache_->read_head(*pages_[pi], token, head, /*is_k=*/false, out);
}

int64_t PagedKvCache::SeqView::run_token0(int run) const {
  QS_CHECK(run >= 0 && run < num_page_runs());
  return int64_t(run) * cache_->cfg_.page_size;
}

cpu::KvHeadRun PagedKvCache::SeqView::head_run(int run, int head,
                                               bool is_k) const {
  QS_CHECK(run >= 0 && run < num_page_runs());
  QS_CHECK(head >= 0 && head < cache_->cfg_.n_kv_heads);
  const KvCacheConfig& cfg = cache_->cfg_;
  const size_t pi = static_cast<size_t>(run);
  // Stale view: the sequence was freed (e.g. preempted) after view().
  QS_DCHECK(pages_[pi]->generation.load(std::memory_order_relaxed) ==
            generations_[pi]);
  const Page& page = *pages_[pi];

  cpu::KvHeadRun r;
  r.n_tokens = std::min<int64_t>(
      cfg.page_size, length_ - int64_t(run) * cfg.page_size);
  const int64_t span = cache_->head_span();
  if (cfg.precision == KvPrecision::kFp16) {
    r.kind = cpu::KvRunKind::kFp16;
    const auto& half = is_k ? page.k_half : page.v_half;
    r.half_bits = half.data() + int64_t(head) * cfg.head_dim;
    r.stride = span;  // elements
  } else if (cfg.static_scales) {
    r.kind = cpu::KvRunKind::kInt8Static;
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    r.codes = codes.data() + cache_->code_offset(0, head);
    r.stride = span;  // bytes (one INT8 code per element)
    r.static_scale = is_k ? cfg.static_scale_k : cfg.static_scale_v;
  } else {
    r.kind = cfg.precision == KvPrecision::kInt4 ? cpu::KvRunKind::kInt4Dyn
                                                 : cpu::KvRunKind::kInt8Dyn;
    const auto& codes = is_k ? page.k_codes : page.v_codes;
    const auto& params = is_k ? page.k_params : page.v_params;
    r.codes = codes.data() + cache_->code_offset(0, head);
    r.stride = span * static_cast<int>(cfg.precision) / 8;  // bytes
    // Token t's {scale_bits, zero_bits} pair sits at params[t*HKV + head];
    // PackedKvParams is exactly two uint16s, so expose it as a uint16 view.
    r.params = reinterpret_cast<const uint16_t*>(params.data() + head);
    r.param_stride = 2 * cfg.n_kv_heads;
  }
  return r;
}

cpu::KvHeadRun PagedKvCache::SeqView::k_run(int run, int head) const {
  return head_run(run, head, /*is_k=*/true);
}

cpu::KvHeadRun PagedKvCache::SeqView::v_run(int run, int head) const {
  return head_run(run, head, /*is_k=*/false);
}

void PagedKvCache::gather(int seq, Tensor& k_out, Tensor& v_out) const {
  gather_heads(seq, k_out, v_out, 0, cfg_.n_kv_heads);
}

void PagedKvCache::gather_heads(int seq, Tensor& k_out, Tensor& v_out,
                                int head0, int head1) const {
  QS_CHECK(head0 >= 0 && head0 <= head1 && head1 <= cfg_.n_kv_heads);
  // One locked page-table snapshot, then unlocked per-head dequantization —
  // the same arithmetic as read_k/read_v, head by head.
  const SeqView v = view(seq);
  const int64_t span = int64_t(head1 - head0) * cfg_.head_dim;
  k_out = Tensor({v.length(), span});
  v_out = Tensor({v.length(), span});
  for (int64_t t = 0; t < v.length(); ++t) {
    float* kr = k_out.row(t);
    float* vr = v_out.row(t);
    for (int h = head0; h < head1; ++h) {
      v.read_k(t, h, kr + int64_t(h - head0) * cfg_.head_dim);
      v.read_v(t, h, vr + int64_t(h - head0) * cfg_.head_dim);
    }
  }
}

}  // namespace qserve
