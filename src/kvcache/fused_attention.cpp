#include "kvcache/fused_attention.h"

#include <cmath>
#include <vector>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"

namespace qserve {

void fused_decode_attention(const PagedKvCache& cache, int seq,
                            const float* q, const AttentionConfig& cfg,
                            float* out) {
  QS_CHECK_EQ(cfg.n_kv_heads, cache.config().n_kv_heads);
  QS_CHECK_EQ(cfg.head_dim, cache.config().head_dim);
  QS_CHECK_EQ(cfg.n_heads % cfg.n_kv_heads, 0);
  // One locked page-table resolution for the whole kernel; the per-(token,
  // head) reads below are lock-free, as a fused kernel's gathers must be.
  const PagedKvCache::SeqView kv = cache.view(seq);
  const int64_t s_len = kv.length();
  QS_CHECK_GT(s_len, 0);
  const int group = cfg.n_heads / cfg.n_kv_heads;
  const float scale = 1.0f / std::sqrt(float(cfg.head_dim));

  // Parallel over heads; each head reads its own KV slices and writes its
  // own slice of `out`, so the result matches the serial loop bitwise.
  parallel_for(0, cfg.n_heads, 1, [&](int64_t h0, int64_t h1) {
  // Reused per pool thread to keep per-head heap traffic off the hot path.
  thread_local std::vector<float> scores, head_vec;
  scores.resize(static_cast<size_t>(s_len));
  head_vec.resize(static_cast<size_t>(cfg.head_dim));

  for (int64_t h = h0; h < h1; ++h) {
    const int kv_head = static_cast<int>(h) / group;
    const float* qh = q + h * cfg.head_dim;
    float* oh = out + h * cfg.head_dim;

    // Pass 1: QK scores with inline K dequantization, page by page.
    for (int64_t t = 0; t < s_len; ++t) {
      kv.read_k(t, kv_head, head_vec.data());
      float dot = 0.0f;
      for (int d = 0; d < cfg.head_dim; ++d) dot += qh[d] * head_vec[size_t(d)];
      scores[size_t(t)] =
          cfg.fp16_accum ? to_half_precision(dot * scale) : dot * scale;
    }
    softmax_inplace(scores.data(), static_cast<int>(s_len));

    // Pass 2: SV accumulation with inline V dequantization.
    for (int d = 0; d < cfg.head_dim; ++d) oh[d] = 0.0f;
    for (int64_t t = 0; t < s_len; ++t) {
      kv.read_v(t, kv_head, head_vec.data());
      const float p = scores[size_t(t)];
      for (int d = 0; d < cfg.head_dim; ++d) oh[d] += p * head_vec[size_t(d)];
    }
    if (cfg.fp16_accum) {
      for (int d = 0; d < cfg.head_dim; ++d) oh[d] = to_half_precision(oh[d]);
    }
  }
  });
}

}  // namespace qserve
