#include "kvcache/fused_attention.h"

#include <cmath>
#include <vector>

#include "common/half.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "kernels/cpu/attention_kernel.h"
#include "kernels/cpu/isa.h"

namespace qserve {

namespace {

// One head of one sequence's decode attention, driven by the page-run API:
// QK scores and SV accumulation chain across the sequence's page runs with
// inline dequantization inside the microkernels — no per-(token, head)
// scratch copies. The scale/softmax/rounding sequence between the two kernel
// calls is written exactly like attention.cpp's head_attention so the fused
// and gather paths stay bitwise identical.
//
// Scores are indexed by the view's compact score offsets (`run_score0`), not
// logical positions: a sliding-window view exposes only the sink + window
// runs, so the score buffer holds `visible_tokens()` entries. For a
// full-attention view run_score0 == run_token0 and visible_tokens() ==
// length(), making this byte-for-byte the pre-window code path.
void view_head_attention(const PagedKvCache::SeqView& kv,
                         const cpu::AttentionKernels& ker,
                         const AttentionConfig& cfg, int kv_head,
                         const float* qh, float* scores, float* oh) {
  const float scale = 1.0f / std::sqrt(float(cfg.head_dim));
  const int64_t s_vis = kv.visible_tokens();
  const int n_runs = kv.num_page_runs();

  // Pass 1: QK scores with inline K dequantization, page run by page run.
  for (int r = 0; r < n_runs; ++r)
    ker.qk_dot(qh, kv.k_run(r, kv_head), cfg.head_dim,
               scores + kv.run_score0(r));
  for (int64_t t = 0; t < s_vis; ++t) {
    // QServe converts the QK product to FP16 (§5.3); the baseline keeps FP32.
    const float dot = scores[t] * scale;
    scores[t] = cfg.fp16_accum ? to_half_precision(dot) : dot;
  }
  softmax_inplace(scores, static_cast<int>(s_vis));

  // Pass 2: SV accumulation with inline V dequantization.
  for (int d = 0; d < cfg.head_dim; ++d) oh[d] = 0.0f;
  for (int r = 0; r < n_runs; ++r)
    ker.sv_accum(scores + kv.run_score0(r), kv.v_run(r, kv_head),
                 cfg.head_dim, oh);
  if (cfg.fp16_accum) {
    for (int d = 0; d < cfg.head_dim; ++d) oh[d] = to_half_precision(oh[d]);
  }
}

void check_against_cache(const PagedKvCache& cache,
                         const AttentionConfig& cfg) {
  cfg.validate(cache.config().precision == KvPrecision::kInt4);
  QS_CHECK_EQ(cfg.n_kv_heads, cache.config().n_kv_heads);
  QS_CHECK_EQ(cfg.head_dim, cache.config().head_dim);
}

}  // namespace

void fused_decode_attention(const PagedKvCache& cache, int seq,
                            const float* q, const AttentionConfig& cfg,
                            float* out) {
  check_against_cache(cache, cfg);
  // One locked page-table resolution for the whole kernel; the page-run
  // walks below are lock-free, as a fused kernel's gathers must be.
  const PagedKvCache::SeqView kv = cache.view(seq);
  const int64_t s_len = kv.length();
  QS_CHECK_GT(s_len, 0);
  const int group = cfg.n_heads / cfg.n_kv_heads;
  const cpu::AttentionKernels& ker =
      cpu::attention_kernel_for(cpu::active_isa());

  // Parallel over heads; each head reads its own KV slices and writes its
  // own slice of `out`, so the result matches the serial loop bitwise.
  parallel_for(0, cfg.n_heads, 1, [&](int64_t h0, int64_t h1) {
    // Reused per pool thread to keep per-head heap traffic off the hot path.
    thread_local std::vector<float> scores;
    scores.resize(static_cast<size_t>(kv.visible_tokens()));
    for (int64_t h = h0; h < h1; ++h) {
      view_head_attention(kv, ker, cfg, static_cast<int>(h) / group,
                          q + h * cfg.head_dim, scores.data(),
                          out + h * cfg.head_dim);
    }
  });
}

void batched_fused_decode_attention(
    const PagedKvCache& cache, const std::vector<DecodeAttentionItem>& items,
    const AttentionConfig& cfg) {
  batched_fused_decode_attention(cache, items, cfg, 0, cfg.n_heads);
}

void batched_fused_decode_attention(
    const PagedKvCache& cache, const std::vector<DecodeAttentionItem>& items,
    const AttentionConfig& cfg, int q_head0, int n_q_heads) {
  if (items.empty() || n_q_heads == 0) return;
  check_against_cache(cache, cfg);
  const int group = cfg.n_heads / cfg.n_kv_heads;
  QS_CHECK(q_head0 >= 0 && n_q_heads >= 0 &&
           q_head0 + n_q_heads <= cfg.n_heads);
  // GQA-group alignment keeps every KV head's query group in one shard.
  QS_CHECK(q_head0 % group == 0 && n_q_heads % group == 0);
  const cpu::AttentionKernels& ker =
      cpu::attention_kernel_for(cpu::active_isa());

  // One locked page-table snapshot per sequence, resolved up front so the
  // big parallel region below never touches the cache mutex.
  std::vector<PagedKvCache::SeqView> views;
  views.reserve(items.size());
  for (const DecodeAttentionItem& it : items) {
    views.push_back(cache.view(it.seq));
    QS_CHECK_GT(views.back().length(), 0);
  }

  // One flat work list over all sequences × heads for the whole engine step.
  // Each (item, head) pair owns its output slice exclusively, so scheduling
  // order and thread count cannot change the result. Local head l maps to
  // global query head q_head0 + l; items' q/out are slice-relative.
  const int64_t n_work = int64_t(items.size()) * n_q_heads;
  parallel_for(0, n_work, 1, [&](int64_t w0, int64_t w1) {
    thread_local std::vector<float> scores;
    for (int64_t w = w0; w < w1; ++w) {
      const size_t i = static_cast<size_t>(w / n_q_heads);
      const int l = static_cast<int>(w % n_q_heads);
      const PagedKvCache::SeqView& kv = views[i];
      scores.resize(static_cast<size_t>(kv.visible_tokens()));
      view_head_attention(kv, ker, cfg, (q_head0 + l) / group,
                          items[i].q + int64_t(l) * cfg.head_dim,
                          scores.data(),
                          items[i].out + int64_t(l) * cfg.head_dim);
    }
  });
}

}  // namespace qserve
