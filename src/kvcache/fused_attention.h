// Fused decode attention over quantized KV pages (§5.3).
//
// The QServe CUDA kernel never materializes a dequantized K/V matrix: it
// walks the pages, dequantizes each head-vector inline (2-op bit tricks),
// and accumulates QK / SV products in FP16. This is the CPU counterpart:
// it reads the PagedKvCache's pages directly (per-head codes + in-page
// scales/zeros), dequantizes per head-vector on the fly, and accumulates at
// the configured precision. Numerically it must match the gather-then-attend
// reference path exactly — a property the tests pin down — while avoiding
// the O(S * kv_dim) temporary.
#pragma once

#include "kernels/attention.h"
#include "kvcache/paged_kv_cache.h"

namespace qserve {

// One decode step for one sequence: q is [n_heads * head_dim] (post-RoPE),
// out receives [n_heads * head_dim]. `fp16_accum` mirrors QServe's FP16
// QK/SV arithmetic.
void fused_decode_attention(const PagedKvCache& cache, int seq,
                            const float* q, const AttentionConfig& cfg,
                            float* out);

}  // namespace qserve
