// Fused decode attention over quantized KV pages (§5.3).
//
// The QServe CUDA kernel never materializes a dequantized K/V matrix: it
// walks the pages, dequantizes each head-vector inline (2-op bit tricks),
// and accumulates QK / SV products in FP16. This is the CPU counterpart:
// the ISA-dispatched attention microkernels (kernels/cpu/attention_kernel.h)
// walk the PagedKvCache's pages directly via the SeqView page-run API —
// per-head codes + in-page scales/zeros, dequantized inline in SIMD
// registers — and accumulate at the configured precision. Numerically it
// must match the gather-then-attend reference path exactly — a property the
// tests pin down — while avoiding the O(S * kv_dim) temporary.
#pragma once

#include <vector>

#include "kernels/attention.h"
#include "kvcache/paged_kv_cache.h"

namespace qserve {

// One decode step for one sequence: q is [n_heads * head_dim] (post-RoPE),
// out receives [n_heads * head_dim]. `fp16_accum` mirrors QServe's FP16
// QK/SV arithmetic.
void fused_decode_attention(const PagedKvCache& cache, int seq,
                            const float* q, const AttentionConfig& cfg,
                            float* out);

// One engine step's worth of single-row decode attention: every sequence
// that decodes (or verifies token-by-token) this step contributes one item.
struct DecodeAttentionItem {
  int seq = -1;            // PagedKvCache sequence handle
  const float* q = nullptr;  // [n_heads * head_dim], post-RoPE
  float* out = nullptr;      // [n_heads * head_dim]
};

// Batched executor: resolves each sequence's page table once (one lock
// round per sequence), then walks all items × heads in a single
// parallel_for — one kernel dispatch per engine step instead of a
// per-sequence fan-out. Each (item, head) writes only its own output slice,
// so the result is bitwise identical to calling fused_decode_attention on
// each item in any order, at any thread count, on any ISA.
void batched_fused_decode_attention(const PagedKvCache& cache,
                                    const std::vector<DecodeAttentionItem>& items,
                                    const AttentionConfig& cfg);

// Head-ranged executor for tensor-parallel shards: computes only query
// heads [q_head0, q_head0 + n_q_heads) of the FULL config `cfg`, with each
// item's q/out pointing at the shard's own slice (local head 0 = global
// head q_head0). The range must be GQA-group aligned (q_head0 and n_q_heads
// multiples of n_heads / n_kv_heads) so every KV head's query group lives
// in one shard. Per-head arithmetic is the full executor's — a shard's
// output slice is bitwise the corresponding slice of the unsharded call.
void batched_fused_decode_attention(const PagedKvCache& cache,
                                    const std::vector<DecodeAttentionItem>& items,
                                    const AttentionConfig& cfg, int q_head0,
                                    int n_q_heads);

}  // namespace qserve
