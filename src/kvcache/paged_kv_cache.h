// Paged KV cache with per-head dynamic quantization (§5.1).
//
// Follows vLLM/TRT-LLM paging to avoid fragmentation, but instead of their
// per-tensor *static* INT8 scales, QServe stores FP16 scale + zero point per
// (token, head) immediately after the quantized features in each page and
// updates them on the fly — the requirement for KV4 accuracy. This module is
// the storage substrate; the fused attention numerics (FP16 accumulation)
// live in kernels/attention.h and consume the dequantized gather.
// Threading contract: the serving engine fans out prefill/decode across
// requests, so append/read/gather on *distinct* sequences may run
// concurrently — pool bookkeeping (page allocation, free lists, usage
// counters) is guarded by an internal mutex, and page/sequence storage is
// reference-stable (std::deque). Operations on the *same* sequence, and the
// sequence lifecycle (alloc_sequence/free_sequence) relative to uses of that
// sequence, must still be serialized by the caller.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "kernels/cpu/attention_kernel.h"
#include "quant/kv_quant.h"
#include "tensor/tensor.h"

namespace qserve {

enum class KvPrecision : int { kFp16 = 16, kInt8 = 8, kInt4 = 4 };

struct KvCacheConfig {
  int n_kv_heads = 8;
  int head_dim = 64;
  int page_size = 64;  // tokens per page
  KvPrecision precision = KvPrecision::kInt4;
  // Static per-tensor scales (TRT-LLM KV8 baseline) instead of per-head
  // dynamic parameters. Only meaningful for kInt8.
  bool static_scales = false;
  float static_scale_k = 1.0f;
  float static_scale_v = 1.0f;
  int64_t max_pages = 1 << 20;
};

// Device bytes one page occupies (codes + in-page dynamic params), matching
// the layout described in §5.1. Used for memory-budget accounting. Storage
// matches the model exactly: INT4 codes are nibble-packed two per byte, the
// FP16 payload and per-(token, head) scale/zero params are binary16 bits —
// see PagedKvCache::measured_page_bytes().
int64_t kv_page_bytes(const KvCacheConfig& cfg);

// One (token, head) dynamic scale/zero pair as stored in a page: binary16
// bits, 4 bytes total, exactly the §5.1 in-page layout.
struct PackedKvParams {
  uint16_t scale_bits = 0;
  uint16_t zero_bits = 0;
};
static_assert(sizeof(PackedKvParams) == 4, "in-page params must be 2x FP16");

class PagedKvCache {
  struct Page;  // defined below; forward-declared for SeqView

 public:
  explicit PagedKvCache(const KvCacheConfig& cfg);

  // Sequence lifecycle. Handles are dense ints; freed handles are reused.
  int alloc_sequence();
  void free_sequence(int seq);
  bool is_live(int seq) const;

  // Fork: a new sequence aliasing src's first `upto_len` tokens. Every page
  // covering [0, upto_len) — including a partially-covered boundary page —
  // is SHARED (refcount++), not copied, so forking allocates zero pages and
  // cannot fail for capacity. Shared pages are immutable: the first writer
  // (append/append_batch filling the shared tail page, or truncate_sequence
  // cutting into one) copies the page privately first (copy-on-write) and
  // only then writes — the other owners' data, and their SeqViews, stay
  // valid (a CoW copy does NOT bump the shared page's generation; only a
  // true free does). pages_in_use() counts physical pages, so a fork leaves
  // it unchanged and a CoW copy raises it by one. A windowed source may only
  // be forked over pages that can never have been recycled: the sinks, or
  // any prefix while the source has not yet recycled a page.
  int fork_sequence(int src, int64_t upto_len);

  // --- sliding-window attention with sinks (page ring) -----------------------
  //
  // Installs a StreamingLLM-style attention policy on a live sequence: every
  // token keeps attending to the first `sink_tokens` positions plus the most
  // recent `window_tokens` positions, and once the sequence grows past
  // sinks + window the cache stops allocating — the page table becomes
  // [sink pages | ring of ring_pages slots] and each new page REUSES the slot
  // of the oldest non-sink page. Logical positions keep advancing (RoPE and
  // causal masking are untouched); only the physical footprint is bounded at
  // window_page_cap() pages. Recycling a privately-owned page bumps its
  // generation (stale SeqViews trip QS_DCHECK) and reuses it in place — zero
  // pool traffic; recycling a page still shared with a fork or prefix-cache
  // entry releases this sequence's reference (no generation bump — the other
  // owners' bytes stay live and valid) and takes a fresh page instead.
  //
  // `slack_tokens` sizes the ring's safety margin beyond the window: it must
  // cover BOTH the deepest truncate_sequence rollback (speculative k+1) and
  // the largest single append span (prefill chunk / verify span), because a
  // span's earliest row still attends to its own trailing window and a
  // rollback re-exposes up to slack tokens of it. Appends of more than
  // slack_tokens tokens, and truncations deeper than slack_tokens, QS_CHECK.
  //
  // Constraints (all QS_CHECKed loudly): window_tokens > 0 and a multiple of
  // page_size, sink_tokens >= 0 and a multiple of page_size (partial pages
  // are NOT supported — the ring recycles whole pages, so both boundaries
  // must be page-aligned), the sequence must not already have a window, and
  // its current length must still fit the identity-mapped prefix of the ring
  // (<= sinks + window + slack rounded up one page), i.e. install the window
  // before the sequence grows past it. Deterministic by construction: ring
  // geometry is a pure function of (sink, window, slack, page_size), so a
  // preempted request that re-prefills its context re-derives the identical
  // ring state.
  void set_window(int seq, int64_t sink_tokens, int64_t window_tokens,
                  int64_t slack_tokens);

  // Bounded per-sequence footprint of that policy, in pages: sink pages plus
  // the ring slots (window pages + slack pages + 1 boundary page). What the
  // scheduler charges a windowed request per layer instead of ceil(len/page).
  static int64_t window_page_cap(const KvCacheConfig& cfg, int64_t sink_tokens,
                                 int64_t window_tokens, int64_t slack_tokens);

  // Cumulative pages recycled through the ring (in-place reuses + shared-slot
  // replacements).
  int64_t recycled_pages() const {
    return recycled_.load(std::memory_order_relaxed);
  }

  // Cumulative copy-on-write page copies (a writer hit a shared page).
  int64_t cow_page_copies() const {
    return cow_copies_.load(std::memory_order_relaxed);
  }
  // Pages currently referenced by more than one sequence (gauge).
  int64_t shared_pages() const {
    return shared_pages_.load(std::memory_order_relaxed);
  }
  // Of `seq`'s pages, how many are currently shared (refcount > 1).
  int64_t seq_shared_pages(int seq) const;
  // Generation counter snapshot of seq's pages, in page-table order — the
  // prefix index stores this at insert and revalidates on lookup (a
  // mismatch means a page was reclaimed under the entry).
  std::vector<uint32_t> page_generations(int seq) const;

  // Append one token's K and V ([n_kv_heads * head_dim] floats each).
  // Quantizes per (token, head) with dynamic scales (or static, per config).
  void append(int seq, const float* k, const float* v);

  // Batched scatter: append `n` consecutive tokens in one call. k/v point at
  // row 0 of [n, n_kv_heads * head_dim] row-major matrices. Page allocation
  // and length bookkeeping happen once under the lock; the per-token
  // quantize-into-page writes then run unlocked (the slots belong exclusively
  // to this sequence). Bitwise identical to n single append() calls — the
  // batched step executor appends a whole prefill chunk (or all of a step's
  // rows for one sequence) through this path.
  void append_batch(int seq, const float* k, const float* v, int64_t n);

  // Two-phase append for tensor-parallel shards: append_reserve performs ALL
  // of append_batch's locked bookkeeping — capacity check, page allocation,
  // copy-on-write of a shared tail page, length growth — and returns the
  // position of the first reserved token; the reserved slots' bytes are then
  // filled by append_write_heads calls covering disjoint KV-head ranges
  // (shards write their own heads concurrently, lock-free: head vectors
  // occupy disjoint byte ranges — INT4 nibble packing keeps head boundaries
  // byte-aligned because head_dim is even). k/v point at row 0 of
  // [n, (head1 - head0) * head_dim] row-major slices whose rows are
  // `row_stride` floats apart. reserve + write_heads over a covering
  // partition of [0, n_kv_heads) is bitwise identical to one append_batch
  // (same per-head kv_quantize, same page layout, same fault-site draw
  // sequence: one kv_append draw per reserve, like append_batch).
  int64_t append_reserve(int seq, int64_t n);
  void append_write_heads(int seq, int64_t pos0, const float* k,
                          const float* v, int64_t n, int head0, int head1,
                          int64_t row_stride);

  // Roll the sequence back to `new_len` tokens (0 <= new_len <= seq_len).
  // Pages that become empty drop one reference and return to the free pool
  // when the last reference goes; the last kept page, if the truncation cuts
  // into it, stays allocated and its vacated slots are rewritten by the next
  // append. Every truly freed page AND a privately-owned partially-truncated
  // last page bump their generation counter, so a SeqView taken before the
  // rollback trips QS_DCHECK on reads instead of silently returning
  // rolled-back (or since-rewritten) data — the same stale-view contract as
  // preemption's free_sequence(). A SHARED boundary page is left untouched
  // (no bump: the other owners' views must stay valid, and its bytes are
  // immutable — the next append to this sequence copies it on write), so a
  // rollback can never corrupt another sequence forked from the same
  // prefix. Composes with append/append_batch: truncate-then-append stores
  // byte-identical pages to a sequence that never held the rejected tail.
  // This is the speculative-decoding rollback primitive: a verify step
  // appends k+1 tokens and then truncates the rejected suffix.
  void truncate_sequence(int seq, int64_t new_len);

  int64_t seq_len(int seq) const;
  int64_t pages_in_use() const {
    return used_pages_.load(std::memory_order_relaxed);
  }
  int64_t free_pages() const { return cfg_.max_pages - pages_in_use(); }
  int64_t bytes_in_use() const { return pages_in_use() * kv_page_bytes(cfg_); }
  // Bytes a page's payload vectors actually occupy, summed from the real
  // container sizes; equals kv_page_bytes(config()) (asserted in tests).
  int64_t measured_page_bytes() const;

  // Would appending `tokens` more tokens to `seq` fit in the pool?
  bool can_grow(int seq, int64_t tokens) const;

  // Dequantize the whole sequence into [s, n_kv_heads*head_dim] matrices
  // (the gather a fused attention kernel performs page by page).
  void gather(int seq, Tensor& k_out, Tensor& v_out) const;

  // Head-ranged gather for tensor-parallel shards: dequantize only heads
  // [head0, head1) into [s, (head1-head0)*head_dim] matrices. Bitwise the
  // corresponding columns of the full gather.
  void gather_heads(int seq, Tensor& k_out, Tensor& v_out, int head0,
                    int head1) const;

  // Windowed gather: dequantize every RESIDENT token of a windowed sequence —
  // the sinks [0, min(sink, len)) followed by the retained tail [tail0, len)
  // — into [sink_eff + len - tail0, span] matrices, and return tail0 (the
  // oldest post-sink logical position whose page has not been recycled;
  // equals the sink boundary while nothing has been recycled yet). The
  // retained tail is a superset of any row's attention window, including
  // every row of an append span up to slack tokens, so a windowed prefill
  // kernel can mask per row against logical positions: gathered row of
  // logical t is t for t < sink_eff and sink_eff + (t - tail0) for
  // t >= tail0. QS_CHECKs that the sequence actually has a window.
  int64_t gather_visible(int seq, Tensor& k_out, Tensor& v_out) const;
  int64_t gather_visible_heads(int seq, Tensor& k_out, Tensor& v_out,
                               int head0, int head1) const;

  // Dequantize a single (token, head) K or V vector into out[head_dim] —
  // the inline access pattern of the fused attention kernel (§5.3). Exactly
  // the same arithmetic as gather().
  void read_k(int seq, int64_t token, int head, float* out) const;
  void read_v(int seq, int64_t token, int head, float* out) const;

  // Lock-free repeated reads over one sequence: resolves the page table
  // once under the lock, then every read_k/read_v dequantizes without
  // synchronization — the access pattern of a fused attention kernel that
  // must not take a mutex per (token, head). Valid while the sequence is
  // live and not concurrently appended (the same same-sequence
  // serialization contract as the locked readers above). The view snapshots
  // each page's generation counter; once preemption free_sequence()s the
  // sequence mid-flight, any page may be recycled, and a stale read trips a
  // QS_DCHECK (Debug builds) instead of silently reading another request's
  // KV data.
  class SeqView {
   public:
    int64_t length() const { return length_; }
    // Tokens a decode-attention pass over this view visits: length() for a
    // full-attention sequence; sinks + trailing window once a windowed
    // sequence grows past them. This is the compact score-buffer size.
    int64_t visible_tokens() const { return visible_; }
    void read_k(int64_t token, int head, float* out) const;
    void read_v(int64_t token, int head, float* out) const;

    // Page-run API: the sequence's attended tokens as contiguous in-page
    // spans the attention microkernels walk directly — raw code/param
    // pointers into the page, no per-(token, head) dequant copies. Run r
    // covers logical positions [run_token0(r), run_token0(r) + n_tokens)
    // and rows [run_score0(r), run_score0(r) + n_tokens) of the compact
    // score buffer; for a full-attention sequence the two coincide (one run
    // per page, score buffer indexed by position). A windowed view's runs
    // cover exactly [0, sink) then [length - window', length) — the first
    // tail run may start mid-page — so kernels never touch recycled pages.
    // The returned KvHeadRun's kind reflects the cache precision (kFp16 /
    // kInt8Dyn / kInt8Static / kInt4Dyn); pointers stay valid under the same
    // snapshot/staleness contract as read_k/read_v (generation-checked).
    int num_page_runs() const { return static_cast<int>(runs_.size()); }
    int64_t run_token0(int run) const;
    int64_t run_score0(int run) const;
    cpu::KvHeadRun k_run(int run, int head) const;
    cpu::KvHeadRun v_run(int run, int head) const;

   private:
    // One contiguous span of resident tokens inside a single page.
    struct Run {
      const Page* page = nullptr;
      uint32_t generation = 0;
      int64_t token0 = 0;    // logical position of the run's first token
      int64_t slot0 = 0;     // its in-page slot
      int64_t n_tokens = 0;
      int64_t score0 = 0;    // offset into the compact score buffer
    };
    cpu::KvHeadRun head_run(int run, int head, bool is_k) const;
    const Run& run_for(int64_t token) const;
    friend class PagedKvCache;
    const PagedKvCache* cache_ = nullptr;
    std::vector<Run> runs_;
    int64_t length_ = 0;
    int64_t visible_ = 0;
  };
  SeqView view(int seq) const;

  const KvCacheConfig& config() const { return cfg_; }

 private:
  struct Page {
    // Payload at true device width: INT8 codes one per byte, INT4 codes
    // nibble-packed two per byte, FP16 payload and per-(token, head) dynamic
    // params as binary16 bits — a page's in-memory footprint equals
    // kv_page_bytes() exactly.
    std::vector<uint8_t> k_codes, v_codes;
    std::vector<uint16_t> k_half, v_half;
    std::vector<PackedKvParams> k_params, v_params;  // per (token, head)
    // Bumped every time the page is returned to the free list; a SeqView
    // created before the free holds the old value and QS_DCHECKs on reads.
    // Atomic only to keep the stale-read *detector* itself benign when the
    // same-sequence contract has already been violated.
    std::atomic<uint32_t> generation{0};
    // How many live sequences' page tables reference this page. 1 = private
    // (writable in place), >1 = shared (immutable; writers copy first).
    // Mutated only under mu_.
    int32_t refcount = 0;

    void resize(const KvCacheConfig& cfg);
    int64_t payload_bytes() const;
    void copy_payload_from(const Page& src);
  };

  struct Sequence {
    // For a windowed sequence the table is [sink pages | ring slots]; a -1
    // entry is a hole (slot vacated by a truncation across the ring, refilled
    // by the next append that reaches it). Plain sequences never hold -1.
    std::vector<int> page_table;
    int64_t length = 0;
    bool live = false;
    // Sliding-window state (set_window; all zero = full attention).
    int64_t sink = 0;        // sink tokens, page multiple
    int64_t window = 0;      // window tokens, page multiple; 0 = no window
    int64_t slack = 0;       // max rollback / append-span overshoot, tokens
    int64_t ring_pages = 0;  // window/P + ceil(slack/P) + 1
    int64_t tail0 = 0;       // oldest post-sink logical token still resident
  };

  int64_t head_span() const { return int64_t(cfg_.n_kv_heads) * cfg_.head_dim; }
  // Byte offset of (token_in_page, head)'s codes inside a code vector.
  int64_t code_offset(int64_t slot, int head) const {
    return (slot * head_span() + int64_t(head) * cfg_.head_dim) *
           static_cast<int>(cfg_.precision) / 8;
  }
  bool is_live_locked(int seq) const;
  // Physical page-table slot of logical page `pi`: identity for plain
  // sequences and for the sink pages; ring arithmetic beyond them.
  int64_t page_slot(const Sequence& s, int64_t pi) const {
    if (s.window == 0) return pi;
    const int64_t sink_pages = s.sink / cfg_.page_size;
    if (pi < sink_pages) return pi;
    return sink_pages + (pi - sink_pages) % s.ring_pages;
  }
  // Pages a (simulated) n-token append would take from the free pool: growth
  // slots, ring slots whose occupant is shared (fresh page replaces it) or a
  // hole, plus the CoW copy of a shared tail page. Caller holds mu_.
  int64_t grow_need_locked(const Sequence& s, int64_t n) const;
  // Resolve logical page `pi` for an append crossing into it: grow the
  // table, refill a hole, or recycle the slot's previous occupant (in-place
  // reuse with a generation bump when private; release + fresh page when
  // shared). Returns the page id now at the slot. Caller holds mu_.
  int ring_advance_locked(Sequence& s, int64_t pi);
  int alloc_page_locked();
  // Drop one reference to page `pid`; frees it (generation bump + free list)
  // only when the last reference goes.
  void release_page_locked(int pid);
  // Make page `page_index` of `s` privately owned, copying it if shared.
  // Returns the (possibly new) page. May allocate — the only way append
  // paths consume an extra page beyond the length-growth arithmetic.
  Page& ensure_private_locked(Sequence& s, int64_t page_index);
  // Locked core of append_reserve/append_batch: grow the sequence by n
  // tokens (allocating pages, CoW-copying a shared tail) and return the
  // first reserved position. Caller holds mu_.
  int64_t append_reserve_locked(int seq, int64_t n);
  // Quantize one token's K/V into `page` at `slot` (no locking; the slot is
  // owned exclusively by the appending sequence). Shared by append() and
  // append_batch() so the two paths are bitwise identical by construction.
  void write_token(Page& page, int64_t slot, const float* k, const float* v);
  // Head-ranged variant: heads [head0, head1), k/v pointing at the slice's
  // own head 0 (head h reads k + (h - head0) * head_dim). write_token is
  // the full-range case, so the two are bitwise identical by construction.
  void write_token_heads(Page& page, int64_t slot, const float* k,
                         const float* v, int head0, int head1);
  // Resolve the page holding (seq, token) under mu_, with bounds checks.
  const Page* locate(int seq, int64_t token, int head) const;
  // Dequantize one (token, head) K or V vector out of `page` (no locking;
  // pages of a live sequence are immutable except via same-seq append).
  void read_head(const Page& page, int64_t token, int head, bool is_k,
                 float* out) const;

  KvCacheConfig cfg_;
  // Deques keep references to live pages/sequences stable while the pool
  // grows under concurrent append (see threading contract above).
  mutable std::mutex mu_;
  std::deque<Page> pages_;
  std::vector<int> free_page_ids_;
  std::deque<Sequence> seqs_;
  std::vector<int> free_seq_ids_;
  std::atomic<int64_t> used_pages_{0};
  std::atomic<int64_t> cow_copies_{0};
  std::atomic<int64_t> shared_pages_{0};
  std::atomic<int64_t> recycled_{0};
};

}  // namespace qserve
